//! Path expressions: the declared partial order of monitor procedure
//! calls.
//!
//! §3 of the paper: *"we require the partial ordering of procedure calls
//! within a monitor be specified in the monitor declaration. A convenient
//! way to specify the partial order relation is path-expression like
//! notation \[Campbell & Kolstad\]"*.
//!
//! We implement a small path-expression language over procedure names:
//!
//! ```text
//! pathexpr := "path" expr "end"            (the keywords are optional)
//! expr     := seq ( ("|" | ",") seq )*     alternation (selector)
//! seq      := rep ( ";" rep )*             sequencing
//! rep      := atom ( "*" | "+" | "?" )*    repetition
//! atom     := NAME | "(" expr ")"
//! ```
//!
//! The expression constrains, **per process**, the order of that
//! process's procedure calls on the monitor — exactly the paper's
//! "partial ordering declared in the monitor specification explicitly",
//! e.g. `path (request ; release)* end` for a resource allocator.
//!
//! An expression is compiled against a [`crate::spec::MonitorSpec`] into
//! a Thompson NFA ([`CompiledPath`]); a [`PathTracker`] then follows one
//! process's calls through the automaton. A call that leaves the
//! automaton without successor states is an ordering violation
//! (user-process-level fault, ST-8 / FD-Rule 7).

use crate::ids::ProcName;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::BTreeSet;
use std::fmt;

/// Errors raised while parsing or compiling a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// Lexical error at byte offset.
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// The offending character.
        ch: char,
    },
    /// Unexpected token during parsing.
    Parse {
        /// Description of what was found/expected.
        message: String,
    },
    /// A name in the expression is not a declared procedure of the
    /// monitor the expression is compiled against.
    UnknownProcedure {
        /// The undeclared name.
        name: String,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Lex { at, ch } => {
                write!(f, "unexpected character {ch:?} at byte {at} in path expression")
            }
            PathError::Parse { message } => write!(f, "path expression syntax error: {message}"),
            PathError::UnknownProcedure { name } => {
                write!(f, "path expression names undeclared procedure {name:?}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// Abstract syntax of a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Node {
    /// A procedure name.
    Name(String),
    /// `a ; b ; c` — sequencing.
    Seq(Vec<Node>),
    /// `a | b | c` — selection.
    Alt(Vec<Node>),
    /// `e*` — zero or more repetitions.
    Star(Box<Node>),
    /// `e+` — one or more repetitions.
    Plus(Box<Node>),
    /// `e?` — optional.
    Opt(Box<Node>),
}

/// A parsed path expression.
///
/// # Examples
///
/// ```
/// use rmon_core::PathExpr;
/// let p = PathExpr::parse("path (request ; release)* end")?;
/// assert!(p.accepts_names(&["request", "release", "request", "release"]));
/// assert!(!p.accepts_names(&["release"]));
/// # Ok::<(), rmon_core::PathError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PathExpr {
    src: String,
    ast: Node,
}

impl PartialEq for PathExpr {
    fn eq(&self, other: &Self) -> bool {
        self.ast == other.ast
    }
}

impl Eq for PathExpr {}

impl PathExpr {
    /// Parses a path expression. The `path` / `end` keywords are
    /// accepted but optional.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] on lexical or syntax errors.
    pub fn parse(src: &str) -> Result<PathExpr, PathError> {
        let tokens = lex(src)?;
        let mut p = Parser { tokens, pos: 0 };
        let ast = p.parse_top()?;
        Ok(PathExpr { src: src.to_string(), ast })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The parsed syntax tree, for the static spec analyzer.
    pub(crate) fn ast(&self) -> &Node {
        &self.ast
    }

    /// All procedure names mentioned in the expression.
    pub fn names(&self) -> BTreeSet<&str> {
        fn walk<'a>(n: &'a Node, out: &mut BTreeSet<&'a str>) {
            match n {
                Node::Name(s) => {
                    out.insert(s.as_str());
                }
                Node::Seq(v) | Node::Alt(v) => v.iter().for_each(|c| walk(c, out)),
                Node::Star(c) | Node::Plus(c) | Node::Opt(c) => walk(c, out),
            }
        }
        let mut out = BTreeSet::new();
        walk(&self.ast, &mut out);
        out
    }

    /// Compiles the expression to an NFA, resolving procedure names
    /// through `resolve` (typically
    /// [`crate::spec::MonitorSpec::proc_by_name`]).
    ///
    /// # Errors
    ///
    /// Returns [`PathError::UnknownProcedure`] if a name does not
    /// resolve.
    pub fn compile(
        &self,
        mut resolve: impl FnMut(&str) -> Option<ProcName>,
    ) -> Result<CompiledPath, PathError> {
        let mut nfa = NfaBuilder::default();
        let frag = nfa.build(&self.ast, &mut resolve)?;
        Ok(CompiledPath { eps: nfa.eps, steps: nfa.steps, start: frag.start, accept: frag.accept })
    }

    /// Full-match check against a sequence of names, using a naive
    /// backtracking matcher that is *independent of the NFA* — used in
    /// differential tests of the compiled automaton.
    pub fn accepts_names(&self, names: &[&str]) -> bool {
        // Returns the set of suffix positions reachable after matching a
        // prefix of `names[from..]` against `node`.
        fn positions(node: &Node, names: &[&str], from: usize, out: &mut BTreeSet<usize>) {
            match node {
                Node::Name(s) => {
                    if names.get(from).is_some_and(|n| n == s) {
                        out.insert(from + 1);
                    }
                }
                Node::Seq(v) => {
                    let mut cur: BTreeSet<usize> = BTreeSet::from([from]);
                    for child in v {
                        let mut next = BTreeSet::new();
                        for &p in &cur {
                            positions(child, names, p, &mut next);
                        }
                        cur = next;
                        if cur.is_empty() {
                            return;
                        }
                    }
                    out.extend(cur);
                }
                Node::Alt(v) => {
                    for child in v {
                        positions(child, names, from, out);
                    }
                }
                Node::Star(c) => {
                    out.insert(from);
                    let mut frontier = BTreeSet::from([from]);
                    loop {
                        let mut next = BTreeSet::new();
                        for &p in &frontier {
                            positions(c, names, p, &mut next);
                        }
                        let fresh: BTreeSet<usize> = next.difference(out).copied().collect();
                        if fresh.is_empty() {
                            break;
                        }
                        out.extend(fresh.iter().copied());
                        frontier = fresh;
                    }
                }
                Node::Plus(c) => {
                    let star = Node::Star(c.clone());
                    let mut after_one = BTreeSet::new();
                    positions(c, names, from, &mut after_one);
                    for &p in &after_one {
                        positions(&star, names, p, out);
                    }
                }
                Node::Opt(c) => {
                    out.insert(from);
                    positions(c, names, from, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        positions(&self.ast, names, 0, &mut out);
        out.contains(&names.len())
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.src)
    }
}

impl Serialize for PathExpr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.src)
    }
}

impl<'de> Deserialize<'de> for PathExpr {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        PathExpr::parse(&s).map_err(D::Error::custom)
    }
}

// ---------------------------------------------------------------------
// Lexer / parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Semi,
    Alt,
    Star,
    Plus,
    Question,
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<Token>, PathError> {
    let mut out = Vec::new();
    let mut it = src.char_indices().peekable();
    while let Some(&(i, c)) = it.peek() {
        match c {
            c if c.is_whitespace() => {
                it.next();
            }
            ';' => {
                it.next();
                out.push(Token::Semi);
            }
            '|' | ',' => {
                it.next();
                out.push(Token::Alt);
            }
            '*' => {
                it.next();
                out.push(Token::Star);
            }
            '+' => {
                it.next();
                out.push(Token::Plus);
            }
            '?' => {
                it.next();
                out.push(Token::Question);
            }
            '(' => {
                it.next();
                out.push(Token::LParen);
            }
            ')' => {
                it.next();
                out.push(Token::RParen);
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut name = String::new();
                while let Some(&(_, c2)) = it.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        name.push(c2);
                        it.next();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    // `path` and `end` are cosmetic keywords.
                    "path" | "end" => {}
                    _ => out.push(Token::Ident(name)),
                }
            }
            _ => return Err(PathError::Lex { at: i, ch: c }),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_top(&mut self) -> Result<Node, PathError> {
        if self.tokens.is_empty() {
            return Err(PathError::Parse { message: "empty path expression".into() });
        }
        let node = self.parse_alt()?;
        if self.pos != self.tokens.len() {
            return Err(PathError::Parse {
                message: format!("trailing tokens starting at token {}", self.pos),
            });
        }
        Ok(node)
    }

    fn parse_alt(&mut self) -> Result<Node, PathError> {
        let mut items = vec![self.parse_seq()?];
        while self.peek() == Some(&Token::Alt) {
            self.bump();
            items.push(self.parse_seq()?);
        }
        Ok(if items.len() == 1 { items.pop().expect("one item") } else { Node::Alt(items) })
    }

    fn parse_seq(&mut self) -> Result<Node, PathError> {
        let mut items = vec![self.parse_rep()?];
        while self.peek() == Some(&Token::Semi) {
            self.bump();
            items.push(self.parse_rep()?);
        }
        Ok(if items.len() == 1 { items.pop().expect("one item") } else { Node::Seq(items) })
    }

    fn parse_rep(&mut self) -> Result<Node, PathError> {
        let mut node = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    node = Node::Star(Box::new(node));
                }
                Some(Token::Plus) => {
                    self.bump();
                    node = Node::Plus(Box::new(node));
                }
                Some(Token::Question) => {
                    self.bump();
                    node = Node::Opt(Box::new(node));
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn parse_atom(&mut self) -> Result<Node, PathError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(Node::Name(name)),
            Some(Token::LParen) => {
                let inner = self.parse_alt()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    other => {
                        Err(PathError::Parse { message: format!("expected ')', found {other:?}") })
                    }
                }
            }
            other => Err(PathError::Parse {
                message: format!("expected a procedure name or '(', found {other:?}"),
            }),
        }
    }
}

// ---------------------------------------------------------------------
// NFA
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct NfaBuilder {
    /// Epsilon transitions per state.
    eps: Vec<Vec<usize>>,
    /// Symbol transitions per state.
    steps: Vec<Vec<(ProcName, usize)>>,
}

struct Frag {
    start: usize,
    accept: usize,
}

impl NfaBuilder {
    fn new_state(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        self.eps.len() - 1
    }

    fn build(
        &mut self,
        node: &Node,
        resolve: &mut impl FnMut(&str) -> Option<ProcName>,
    ) -> Result<Frag, PathError> {
        match node {
            Node::Name(name) => {
                let sym = resolve(name)
                    .ok_or_else(|| PathError::UnknownProcedure { name: name.clone() })?;
                let s = self.new_state();
                let a = self.new_state();
                self.steps[s].push((sym, a));
                Ok(Frag { start: s, accept: a })
            }
            Node::Seq(v) => {
                let mut frags = Vec::with_capacity(v.len());
                for child in v {
                    frags.push(self.build(child, resolve)?);
                }
                let mut it = frags.into_iter();
                let first = it.next().expect("Seq has at least one child");
                let mut prev_accept = first.accept;
                for f in it {
                    self.eps[prev_accept].push(f.start);
                    prev_accept = f.accept;
                }
                Ok(Frag { start: first.start, accept: prev_accept })
            }
            Node::Alt(v) => {
                let s = self.new_state();
                let a = self.new_state();
                for child in v {
                    let f = self.build(child, resolve)?;
                    self.eps[s].push(f.start);
                    self.eps[f.accept].push(a);
                }
                Ok(Frag { start: s, accept: a })
            }
            Node::Star(c) => {
                let s = self.new_state();
                let a = self.new_state();
                let f = self.build(c, resolve)?;
                self.eps[s].push(f.start);
                self.eps[s].push(a);
                self.eps[f.accept].push(f.start);
                self.eps[f.accept].push(a);
                Ok(Frag { start: s, accept: a })
            }
            Node::Plus(c) => {
                let f = self.build(c, resolve)?;
                let a = self.new_state();
                self.eps[f.accept].push(f.start);
                self.eps[f.accept].push(a);
                Ok(Frag { start: f.start, accept: a })
            }
            Node::Opt(c) => {
                let s = self.new_state();
                let a = self.new_state();
                let f = self.build(c, resolve)?;
                self.eps[s].push(f.start);
                self.eps[s].push(a);
                self.eps[f.accept].push(a);
                Ok(Frag { start: s, accept: a })
            }
        }
    }
}

/// A path expression compiled against a monitor specification.
#[derive(Debug, Clone)]
pub struct CompiledPath {
    eps: Vec<Vec<usize>>,
    steps: Vec<Vec<(ProcName, usize)>>,
    start: usize,
    accept: usize,
}

impl CompiledPath {
    /// Number of NFA states.
    pub fn state_count(&self) -> usize {
        self.eps.len()
    }

    /// Epsilon successors of one state, for the static spec analyzer.
    pub(crate) fn eps_edges(&self, state: usize) -> &[usize] {
        &self.eps[state]
    }

    /// Symbol transitions of one state, for the static spec analyzer.
    pub(crate) fn step_edges(&self, state: usize) -> &[(ProcName, usize)] {
        &self.steps[state]
    }

    /// The NFA start state.
    pub(crate) fn start_state(&self) -> usize {
        self.start
    }

    /// The NFA accept state.
    pub(crate) fn accept_state(&self) -> usize {
        self.accept
    }

    /// Assembles an automaton directly from its transition tables —
    /// only for analyzer unit tests that need shapes the Thompson
    /// construction cannot produce (e.g. trap states).
    #[cfg(test)]
    pub(crate) fn from_parts(
        eps: Vec<Vec<usize>>,
        steps: Vec<Vec<(ProcName, usize)>>,
        start: usize,
        accept: usize,
    ) -> CompiledPath {
        CompiledPath { eps, steps, start, accept }
    }

    /// Starts tracking one process's calls through the automaton.
    pub fn tracker(&self) -> PathTracker<'_> {
        PathTracker { path: self, states: self.initial_states() }
    }

    /// The initial (epsilon-closed) NFA state set. Use together with
    /// [`CompiledPath::advance_states`] when the state set must be
    /// stored independently of the automaton (e.g. one set per process
    /// inside a detector).
    pub fn initial_states(&self) -> Vec<bool> {
        let mut states = vec![false; self.eps.len()];
        states[self.start] = true;
        self.close(&mut states);
        states
    }

    /// Advances an externally stored state set by one call.
    ///
    /// # Errors
    ///
    /// Returns [`OrderViolation`] — and leaves the set unchanged — if no
    /// automaton path allows the call.
    pub fn advance_states(
        &self,
        states: &mut Vec<bool>,
        proc_name: ProcName,
    ) -> Result<(), OrderViolation> {
        let mut next = vec![false; states.len()];
        let mut any = false;
        for (s, &active) in states.iter().enumerate() {
            if !active {
                continue;
            }
            for &(sym, t) in &self.steps[s] {
                if sym == proc_name {
                    next[t] = true;
                    any = true;
                }
            }
        }
        if !any {
            return Err(OrderViolation { proc_name });
        }
        self.close(&mut next);
        *states = next;
        Ok(())
    }

    /// Whether an externally stored state set marks a complete path.
    pub fn states_complete(&self, states: &[bool]) -> bool {
        states[self.accept]
    }

    /// Epsilon-closure of a state set, in place.
    fn close(&self, states: &mut [bool]) {
        let mut stack: Vec<usize> =
            states.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if !states[t] {
                    states[t] = true;
                    stack.push(t);
                }
            }
        }
    }

    /// Runs a whole call sequence; `true` iff it is accepted in full.
    pub fn accepts(&self, calls: &[ProcName]) -> bool {
        let mut t = self.tracker();
        for &c in calls {
            if t.advance(c).is_err() {
                return false;
            }
        }
        t.is_complete()
    }
}

/// Error returned by [`PathTracker::advance`] when a call violates the
/// declared order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderViolation {
    /// The offending call.
    pub proc_name: ProcName,
}

impl fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "procedure call {} violates the declared call order", self.proc_name)
    }
}

impl std::error::Error for OrderViolation {}

/// Follows one process's procedure calls through a [`CompiledPath`].
#[derive(Debug, Clone)]
pub struct PathTracker<'a> {
    path: &'a CompiledPath,
    states: Vec<bool>,
}

impl<'a> PathTracker<'a> {
    /// Advances the tracker by one call.
    ///
    /// # Errors
    ///
    /// Returns [`OrderViolation`] — and leaves the tracker unchanged, so
    /// detection can continue — if no automaton path allows the call.
    pub fn advance(&mut self, proc_name: ProcName) -> Result<(), OrderViolation> {
        self.path.advance_states(&mut self.states, proc_name)
    }

    /// Whether the call allowed next includes `proc_name` (lookahead
    /// without advancing).
    pub fn allows(&self, proc_name: ProcName) -> bool {
        self.states.iter().enumerate().any(|(s, &active)| {
            active && self.path.steps[s].iter().any(|&(sym, _)| sym == proc_name)
        })
    }

    /// Whether the calls so far form a *complete* path (the accept state
    /// is reachable) — e.g. every `request` has its `release`.
    pub fn is_complete(&self) -> bool {
        self.states[self.path.accept]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver(names: &'static [&'static str]) -> impl FnMut(&str) -> Option<ProcName> {
        move |n: &str| names.iter().position(|x| *x == n).map(|i| ProcName::new(i as u16))
    }

    fn compile(src: &str, names: &'static [&'static str]) -> CompiledPath {
        PathExpr::parse(src).unwrap().compile(resolver(names)).unwrap()
    }

    const RR: &[&str] = &["request", "release"];

    #[test]
    fn parses_keywords_optionally() {
        assert!(PathExpr::parse("path request end").is_ok());
        assert!(PathExpr::parse("request").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(PathExpr::parse("re@quest"), Err(PathError::Lex { .. })));
        assert!(matches!(PathExpr::parse("(request"), Err(PathError::Parse { .. })));
        assert!(matches!(PathExpr::parse(""), Err(PathError::Parse { .. })));
        assert!(matches!(PathExpr::parse("path end"), Err(PathError::Parse { .. })));
        assert!(matches!(PathExpr::parse("a b"), Err(PathError::Parse { .. })));
    }

    #[test]
    fn unknown_procedure_fails_compile() {
        let e = PathExpr::parse("bogus").unwrap().compile(resolver(RR));
        assert!(matches!(e, Err(PathError::UnknownProcedure { .. })));
    }

    #[test]
    fn allocator_order_accepts_balanced() {
        let p = compile("path (request ; release)* end", RR);
        let rq = ProcName::new(0);
        let rl = ProcName::new(1);
        assert!(p.accepts(&[]));
        assert!(p.accepts(&[rq, rl]));
        assert!(p.accepts(&[rq, rl, rq, rl]));
        assert!(!p.accepts(&[rl]));
        assert!(!p.accepts(&[rq, rq]));
        // Incomplete (held resource) is not *accepted* …
        assert!(!p.accepts(&[rq]));
        // … but is a valid prefix:
        let mut t = p.tracker();
        assert!(t.advance(rq).is_ok());
        assert!(!t.is_complete());
        assert!(t.allows(rl));
        assert!(!t.allows(rq));
    }

    #[test]
    fn violation_leaves_tracker_usable() {
        let p = compile("(request ; release)*", RR);
        let rq = ProcName::new(0);
        let rl = ProcName::new(1);
        let mut t = p.tracker();
        assert!(t.advance(rl).is_err());
        // Tracker unchanged: request is still allowed.
        assert!(t.advance(rq).is_ok());
    }

    #[test]
    fn alternation_and_optional() {
        let p = compile("(a | b) ; c?", &["a", "b", "c"]);
        let a = ProcName::new(0);
        let b = ProcName::new(1);
        let c = ProcName::new(2);
        assert!(p.accepts(&[a]));
        assert!(p.accepts(&[b, c]));
        assert!(!p.accepts(&[c]));
        assert!(!p.accepts(&[a, b]));
    }

    #[test]
    fn plus_requires_one() {
        let p = compile("a+", &["a"]);
        let a = ProcName::new(0);
        assert!(!p.accepts(&[]));
        assert!(p.accepts(&[a]));
        assert!(p.accepts(&[a, a, a]));
    }

    #[test]
    fn comma_is_alternation() {
        let p = compile("path a, b end", &["a", "b"]);
        assert!(p.accepts(&[ProcName::new(0)]));
        assert!(p.accepts(&[ProcName::new(1)]));
        assert!(!p.accepts(&[ProcName::new(0), ProcName::new(1)]));
    }

    #[test]
    fn naive_matcher_agrees_on_basics() {
        let p = PathExpr::parse("(request ; release)*").unwrap();
        assert!(p.accepts_names(&[]));
        assert!(p.accepts_names(&["request", "release"]));
        assert!(!p.accepts_names(&["request"]));
        assert!(!p.accepts_names(&["release", "request"]));
    }

    #[test]
    fn names_are_collected() {
        let p = PathExpr::parse("(a;b)|c*").unwrap();
        let names = p.names();
        assert_eq!(names.into_iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn display_and_eq_by_structure() {
        let p1 = PathExpr::parse("path a ; b end").unwrap();
        let p2 = PathExpr::parse("a;b").unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.to_string(), "path a ; b end");
    }

    #[test]
    fn nested_repetition() {
        let p = compile("((a ; b)+ ; c)*", &["a", "b", "c"]);
        let (a, b, c) = (ProcName::new(0), ProcName::new(1), ProcName::new(2));
        assert!(p.accepts(&[]));
        assert!(p.accepts(&[a, b, c]));
        assert!(p.accepts(&[a, b, a, b, c, a, b, c]));
        assert!(!p.accepts(&[a, c]));
    }

    #[test]
    fn state_count_is_reasonable() {
        let p = compile("(request ; release)*", RR);
        assert!(p.state_count() >= 4);
        assert!(p.state_count() <= 16);
    }
}
