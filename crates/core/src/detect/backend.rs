//! The pluggable detection API: [`DetectionBackend`] separates *where
//! checking runs* from *how events get there* ([`ProducerHandle`]).
//!
//! The paper's detector is one observer bolted onto one monitor
//! implementation. Scaling it up surfaced two orthogonal decisions —
//! the instrumentation point (how a monitored thread hands its events
//! to the detection layer) and the checking strategy (inline, sharded
//! workers, scheduled per-shard sweeps) — that were previously fused
//! into the runtime. This module separates them:
//!
//! * [`DetectionBackend`] is the checking side: registration, the
//!   synchronous calling-order lookahead, the periodic checkpoint,
//!   stats, violation collection and shutdown. Implementations differ
//!   only in where the work runs.
//! * [`ProducerHandle`] is the instrumentation side: a cheap
//!   **per-thread** handle that owns its own batch buffer. The hot
//!   path — [`ProducerHandle::observe`] — touches no state shared with
//!   other producers: events accumulate in the handle and leave as one
//!   bounded-channel send per batch per shard. No shared mutex is
//!   acquired per observed event.
//!
//! Three backends are provided:
//!
//! * [`InlineBackend`] — the paper's shape: one [`Detector`] behind one
//!   lock, checked synchronously on the observing thread. Its handles
//!   are unbuffered (every `observe` is a lock + check).
//! * [`ShardedBackend`] — wraps [`ShardedDetector`]: monitors partition
//!   across worker shards, each handle owns per-shard batch buffers
//!   plus its own clones of the shard inbox senders — the
//!   multi-producer ingestion front-end.
//! * [`crate::detect::ScheduledBackend`] — sharding plus a per-shard
//!   checkpoint scheduler (a ticker thread sweeps the shards
//!   round-robin for timer checks, no global barrier).
//!
//! # Why per-thread handles are sound
//!
//! Real-time (Algorithm-3) order state is **per-caller**: the
//! Request-List and path-expression NFA states are keyed by [`Pid`],
//! so events of different pids commute. A handle preserves its own
//! thread's event order (its buffer is FIFO, and per-producer channel
//! order is FIFO), which is exactly the per-pid ordering the engine's
//! per-pid watermarks require — batches from different handles may
//! interleave arbitrarily without losing or double-reporting a check.
//! Events still buffered in *some other thread's* handle at checkpoint
//! time are not lost either: the checkpoint replays the full recorded
//! window with per-pid watermark catch-up, and the straggler batch is
//! deduplicated by the same watermark when it eventually arrives.
//!
//! # Examples
//!
//! ```
//! use rmon_core::detect::{DetectionBackend, InlineBackend, ServiceConfig, ShardedBackend};
//! use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, Nanos, Pid};
//! use std::sync::Arc;
//!
//! let al = MonitorSpec::allocator("res", 1);
//! let spec = Arc::new(al.spec.clone());
//! let m = MonitorId::new(0);
//!
//! // The same driver code works against any backend.
//! let backends: Vec<Box<dyn DetectionBackend>> = vec![
//!     Box::new(InlineBackend::new(DetectorConfig::without_timeouts())),
//!     Box::new(ShardedBackend::new(
//!         DetectorConfig::without_timeouts(),
//!         ServiceConfig::new(2),
//!     )),
//! ];
//! for backend in &backends {
//!     backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
//!     let mut producer = backend.producer();
//!     producer.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.release, true));
//!     producer.flush();
//!     let vs = backend.drain_violations();
//!     assert!(!vs.is_empty(), "{}: release without request", backend.label());
//!     backend.shutdown();
//! }
//! ```

use crate::config::DetectorConfig;
use crate::detect::service::{shard_for, ShardMsg};
use crate::detect::{Detector, ServiceConfig, ServiceStats, ShardStats, ShardedDetector};
use crate::event::Event;
use crate::ids::{MonitorId, Pid, ProcName};
use crate::rule::RuleId;
use crate::spec::MonitorSpec;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::{FaultReport, Violation};
use crossbeam::channel::Sender;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A per-thread ingestion handle: the instrumentation side of the
/// detection API.
///
/// Handles are created by [`DetectionBackend::producer`], are `Send`
/// (move one into each observing thread) and are **not** shared: all
/// methods take `&mut self`, and the whole point of the type is that
/// `observe` works against handle-local state only.
///
/// A handle buffers events and hands them to the backend in batches;
/// [`ProducerHandle::flush`] forces the hand-off. Violations never
/// surface through the handle — they are collected by the backend
/// ([`DetectionBackend::drain_violations`]).
///
/// Dropping a handle flushes it (while the backend is open), so
/// buffered events are not lost when an observing thread exits.
pub trait ProducerHandle: Send + std::fmt::Debug {
    /// Ingests one event. May buffer; may run the real-time checks
    /// synchronously (the inline backend does). Events observed after
    /// [`DetectionBackend::shutdown`] are silently dropped.
    fn observe(&mut self, event: Event);

    /// Hands any buffered events to the backend. After `flush`, a
    /// subsequent backend barrier ([`DetectionBackend::checkpoint`],
    /// [`DetectionBackend::drain_violations`]) reflects everything this
    /// handle observed.
    fn flush(&mut self);

    /// Events observed but not yet handed to the backend.
    fn pending(&self) -> usize;

    /// Whether the backend behind this handle has shut down (stale
    /// handles can be pruned by their owners).
    fn is_closed(&self) -> bool;
}

/// A detection engine behind a uniform, shareable interface: the
/// checking side of the detection API.
///
/// Backends are `Send + Sync` and designed to live in an
/// `Arc<dyn DetectionBackend>` shared by a runtime, its monitors and
/// its checker thread, with each observing thread holding its own
/// [`ProducerHandle`].
///
/// # Contract
///
/// * **Ingestion order** — each pid's events must reach the backend in
///   `seq` order (one thread, one handle satisfies this); different
///   pids and different handles may interleave freely.
/// * **Barriers** — `checkpoint`, `drain_violations` and `stats` see
///   every event previously *flushed* to the backend. Events still
///   buffered in another thread's handle are picked up by the next
///   checkpoint's window replay (per-pid watermarks deduplicate).
/// * **Lookahead** — `call_would_violate` answers from the caller's
///   per-pid order state; flush the calling thread's handle first so
///   the answer reflects that thread's own history.
/// * **Shutdown** — stops background work and drops subsequent
///   ingestion; every method stays safe to call afterwards.
pub trait DetectionBackend: Send + Sync + std::fmt::Debug {
    /// Registers a monitor with its declaration and initial observed
    /// state. Events for unregistered monitors are ignored.
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    );

    /// Creates a fresh per-thread ingestion handle.
    fn producer(&self) -> Box<dyn ProducerHandle>;

    /// Non-mutating real-time calling-order lookahead (ST-8): would an
    /// `Enter` of `proc_name` by `pid` violate right now? Runtimes
    /// that *prevent* faults (`rmon_rt`'s `OrderPolicy::Deny`) consult
    /// this before executing the call.
    fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId>;

    /// Runs the periodic checking routine (Algorithms 1–3 plus timers)
    /// over the window `events` and the observed `snapshots`, returning
    /// the merged report in canonical order.
    fn checkpoint(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport;

    /// Ingestion counters, uniform across backends: per-shard entries
    /// for sharded backends, a single pseudo-shard for inline. The
    /// snapshot is quiescent with respect to everything flushed before
    /// the call.
    fn stats(&self) -> ServiceStats;

    /// Takes all real-time violations collected since the last drain.
    #[must_use = "dropping the return value discards detected violations"]
    fn drain_violations(&self) -> Vec<Violation>;

    /// Stops background threads and drops subsequent ingestion.
    /// Idempotent; implicitly performed on drop.
    fn shutdown(&self);

    /// A short static label for diagnostics (`"inline"`, `"sharded"`,
    /// `"scheduled"`, …).
    fn label(&self) -> &'static str;

    /// Registers a monitor starting from the canonical empty state
    /// ([`MonitorSpec::empty_state`]).
    fn register_empty(&self, monitor: MonitorId, spec: Arc<MonitorSpec>, now: Nanos) {
        let initial = spec.empty_state();
        self.register(monitor, spec, &initial, now);
    }
}

// ---------------------------------------------------------------------
// Inline
// ---------------------------------------------------------------------

/// Everything behind the inline backend's single lock.
#[derive(Debug)]
struct InlineState {
    det: Detector,
    violations: Vec<Violation>,
    counters: ShardStats,
}

#[derive(Debug)]
struct InlineShared {
    state: Mutex<InlineState>,
    open: AtomicBool,
}

impl InlineShared {
    /// Poison-tolerant lock: a panicking observer must not wedge the
    /// backend for every other thread.
    fn lock(&self) -> MutexGuard<'_, InlineState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The paper's shape behind the trait: one [`Detector`] behind one
/// lock, real-time checks running synchronously on the observing
/// thread.
///
/// Its producer handles are unbuffered — each [`ProducerHandle::observe`]
/// acquires the detector lock, which is precisely the contention the
/// sharded backends exist to remove; `InlineBackend` is the baseline
/// they are measured against, and the zero-extra-threads default.
///
/// [`DetectionBackend::stats`] reports one pseudo-shard whose counters
/// track the events actually ingested through handles.
#[derive(Debug)]
pub struct InlineBackend {
    shared: Arc<InlineShared>,
}

impl InlineBackend {
    /// Creates an inline backend with the given timing configuration.
    pub fn new(cfg: DetectorConfig) -> Self {
        InlineBackend {
            shared: Arc::new(InlineShared {
                state: Mutex::new(InlineState {
                    det: Detector::new(cfg),
                    violations: Vec::new(),
                    counters: ShardStats::default(),
                }),
                open: AtomicBool::new(true),
            }),
        }
    }
}

impl DetectionBackend for InlineBackend {
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        let mut st = self.shared.lock();
        st.det.register(monitor, spec, initial, now);
        st.counters.monitors += 1;
    }

    fn producer(&self) -> Box<dyn ProducerHandle> {
        Box::new(InlineProducer { shared: Arc::clone(&self.shared), scratch: Vec::new() })
    }

    fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        self.shared.lock().det.call_would_violate(monitor, pid, proc_name)
    }

    fn checkpoint(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        self.shared.lock().det.checkpoint(now, events, snapshots)
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats { shards: vec![self.shared.lock().counters] }
    }

    fn drain_violations(&self) -> Vec<Violation> {
        std::mem::take(&mut self.shared.lock().violations)
    }

    fn shutdown(&self) {
        self.shared.open.store(false, Ordering::Release);
    }

    fn label(&self) -> &'static str {
        "inline"
    }
}

/// The inline backend's unbuffered handle.
#[derive(Debug)]
struct InlineProducer {
    shared: Arc<InlineShared>,
    scratch: Vec<Violation>,
}

impl ProducerHandle for InlineProducer {
    fn observe(&mut self, event: Event) {
        if !self.shared.open.load(Ordering::Acquire) {
            return;
        }
        let mut st = self.shared.lock();
        st.det.observe_into(&event, &mut self.scratch);
        st.counters.batches += 1;
        st.counters.events_observed += 1;
        st.counters.violations += self.scratch.len() as u64;
        st.violations.append(&mut self.scratch);
    }

    fn flush(&mut self) {}

    fn pending(&self) -> usize {
        0
    }

    fn is_closed(&self) -> bool {
        !self.shared.open.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// Sharded
// ---------------------------------------------------------------------

/// The multi-producer ingestion front-end over [`ShardedDetector`]:
/// monitors partition across worker shards, and every producer handle
/// owns its own per-shard batch buffers plus private clones of the
/// shard inbox senders — the caller-side hot path shares nothing with
/// other producers.
///
/// Compare [`InlineBackend`], where each observation contends on one
/// detector lock, and the pre-trait runtime backend, where all threads
/// funneled through one shared batch-buffer mutex.
#[derive(Debug)]
pub struct ShardedBackend {
    svc: ShardedDetector,
    batch: usize,
    open: Arc<AtomicBool>,
}

/// Default events buffered per handle before a flush.
pub const DEFAULT_INGEST_BATCH: usize = 64;

impl ShardedBackend {
    /// Spawns the shard workers (see [`ShardedDetector::new`]) with the
    /// default per-handle ingest batch ([`DEFAULT_INGEST_BATCH`]).
    pub fn new(cfg: DetectorConfig, service: ServiceConfig) -> Self {
        ShardedBackend {
            svc: ShardedDetector::new(cfg, service),
            batch: DEFAULT_INGEST_BATCH,
            open: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Overrides how many events a producer handle buffers before
    /// flushing a batch to the shards (clamped to at least 1). Handles
    /// created *after* the call use the new size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.set_batch(batch);
        self
    }

    /// In-place form of [`Self::with_batch`], for wrappers that cannot
    /// move the backend.
    pub fn set_batch(&mut self, batch: usize) {
        self.batch = batch.max(1);
    }

    /// The wrapped service (shard topology, counters).
    pub fn service(&self) -> &ShardedDetector {
        &self.svc
    }

    /// The per-handle ingest batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        // Mark outstanding producer handles closed so their owners can
        // prune them; the wrapped service joins its workers in its own
        // drop.
        self.open.store(false, Ordering::Release);
    }
}

impl DetectionBackend for ShardedBackend {
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        self.svc.register(monitor, spec, initial, now);
    }

    fn producer(&self) -> Box<dyn ProducerHandle> {
        let senders = self.svc.shard_senders();
        let bufs = senders.iter().map(|_| Vec::new()).collect();
        Box::new(ShardedProducer {
            senders,
            bufs,
            buffered: 0,
            batch: self.batch,
            open: Arc::clone(&self.open),
        })
    }

    fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        self.svc.call_would_violate(monitor, pid, proc_name)
    }

    fn checkpoint(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        self.svc.checkpoint(now, events, snapshots)
    }

    fn stats(&self) -> ServiceStats {
        self.svc.flush();
        self.svc.stats()
    }

    fn drain_violations(&self) -> Vec<Violation> {
        self.svc.flush();
        self.svc.drain_violations()
    }

    fn shutdown(&self) {
        self.open.store(false, Ordering::Release);
        self.svc.shutdown();
    }

    fn label(&self) -> &'static str {
        "sharded"
    }
}

/// The sharded backends' buffered handle: per-shard buffers drained by
/// one channel send per shard per batch.
#[derive(Debug)]
struct ShardedProducer {
    senders: Vec<Sender<ShardMsg>>,
    bufs: Vec<Vec<Event>>,
    buffered: usize,
    batch: usize,
    open: Arc<AtomicBool>,
}

impl ProducerHandle for ShardedProducer {
    fn observe(&mut self, event: Event) {
        if !self.open.load(Ordering::Acquire) {
            return;
        }
        let shard = shard_for(event.monitor, self.senders.len());
        self.bufs[shard].push(event);
        self.buffered += 1;
        if self.buffered >= self.batch {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buffered == 0 {
            return;
        }
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                // A failed send means the worker shut down; the events
                // are dropped exactly like post-shutdown observes.
                let _ = self.senders[shard].send(ShardMsg::Batch(std::mem::take(buf)));
            }
        }
        self.buffered = 0;
    }

    fn pending(&self) -> usize {
        self.buffered
    }

    fn is_closed(&self) -> bool {
        !self.open.load(Ordering::Acquire)
    }
}

impl Drop for ShardedProducer {
    fn drop(&mut self) {
        if self.open.load(Ordering::Acquire) {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AllocatorSpec;

    fn allocator_spec() -> (Arc<MonitorSpec>, AllocatorSpec) {
        let al = MonitorSpec::allocator("res", 1);
        (Arc::new(al.spec.clone()), al)
    }

    /// A deterministic faulty mix for `monitors` allocators: per
    /// monitor, pid 1 double-requests and pid 2 releases unrequested.
    fn faulty_events(monitors: u32) -> Vec<Event> {
        let (_, al) = allocator_spec();
        let mut events = Vec::new();
        let mut seq = 0;
        for id in 0..monitors {
            let m = MonitorId::new(id);
            for (pid, proc_name) in [(1, al.request), (1, al.request), (2, al.release)] {
                seq += 1;
                events.push(Event::enter(
                    seq,
                    Nanos::new(seq * 10),
                    m,
                    Pid::new(pid),
                    proc_name,
                    false,
                ));
            }
        }
        events
    }

    fn drain_after_flush(backend: &dyn DetectionBackend) -> Vec<Violation> {
        let mut vs = backend.drain_violations();
        vs.sort_by_key(|v| (v.monitor, v.event_seq, v.rule));
        vs
    }

    fn backends() -> Vec<Box<dyn DetectionBackend>> {
        let cfg = DetectorConfig::without_timeouts();
        vec![
            Box::new(InlineBackend::new(cfg)),
            Box::new(ShardedBackend::new(cfg, ServiceConfig::new(1))),
            Box::new(ShardedBackend::new(cfg, ServiceConfig::new(4)).with_batch(4)),
        ]
    }

    #[test]
    fn all_backends_report_the_same_violations_through_one_handle() {
        let (spec, _) = allocator_spec();
        let events = faulty_events(8);
        let mut reference: Option<Vec<Violation>> = None;
        for backend in backends() {
            for id in 0..8 {
                backend.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            }
            let mut producer = backend.producer();
            for e in &events {
                producer.observe(*e);
            }
            producer.flush();
            let got = drain_after_flush(backend.as_ref());
            assert!(!got.is_empty());
            match &reference {
                Some(want) => assert_eq!(&got, want, "backend {}", backend.label()),
                None => reference = Some(got),
            }
        }
    }

    #[test]
    fn two_handles_split_by_pid_match_single_handle_results() {
        // The multi-producer shape: each pid's stream flows through its
        // own handle, handles flush at different times (batch 1 vs
        // batch 1000), so batches interleave at the shards.
        let (spec, _) = allocator_spec();
        let events = faulty_events(6);
        let single = ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(3));
        let split = ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(3));
        for id in 0..6 {
            single.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            split.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
        }
        let mut p = single.producer();
        for e in &events {
            p.observe(*e);
        }
        p.flush();
        let want = drain_after_flush(&single);

        let mut eager = split.producer(); // flushed after every event
        let mut lazy = split.producer(); // flushed only at the end
        for e in &events {
            if e.pid == Pid::new(1) {
                lazy.observe(*e);
            } else {
                eager.observe(*e);
                eager.flush();
            }
        }
        lazy.flush();
        let got = drain_after_flush(&split);
        assert_eq!(got, want);
    }

    #[test]
    fn stats_are_uniform_and_count_ingested_events() {
        let (spec, al) = allocator_spec();
        for backend in backends() {
            backend.register_empty(MonitorId::new(0), Arc::clone(&spec), Nanos::ZERO);
            let mut p = backend.producer();
            p.observe(Event::enter(
                1,
                Nanos::new(10),
                MonitorId::new(0),
                Pid::new(1),
                al.request,
                true,
            ));
            p.flush();
            let stats = backend.stats();
            assert!(stats.shard_count() >= 1, "{}", backend.label());
            assert_eq!(stats.total_events(), 1, "{}", backend.label());
            assert_eq!(
                stats.shards.iter().map(|s| s.monitors).sum::<u64>(),
                1,
                "{}",
                backend.label()
            );
        }
    }

    #[test]
    fn shutdown_drops_subsequent_observes_everywhere() {
        let (spec, al) = allocator_spec();
        for backend in backends() {
            backend.register_empty(MonitorId::new(0), Arc::clone(&spec), Nanos::ZERO);
            let mut p = backend.producer();
            backend.shutdown();
            assert!(p.is_closed(), "{}", backend.label());
            p.observe(Event::enter(
                1,
                Nanos::new(10),
                MonitorId::new(0),
                Pid::new(1),
                al.release,
                true,
            ));
            p.flush();
            assert!(backend.drain_violations().is_empty(), "{}", backend.label());
        }
    }

    #[test]
    fn dropping_a_handle_flushes_buffered_events() {
        let (spec, al) = allocator_spec();
        let backend =
            ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(2))
                .with_batch(1000);
        backend.register_empty(MonitorId::new(0), Arc::clone(&spec), Nanos::ZERO);
        let mut p = backend.producer();
        p.observe(Event::enter(
            1,
            Nanos::new(10),
            MonitorId::new(0),
            Pid::new(1),
            al.release,
            true,
        ));
        assert_eq!(p.pending(), 1);
        drop(p);
        assert!(!backend.drain_violations().is_empty());
    }

    #[test]
    fn lookahead_sees_flushed_history() {
        let (spec, al) = allocator_spec();
        for backend in backends() {
            let m = MonitorId::new(5);
            backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
            assert_eq!(
                backend.call_would_violate(m, Pid::new(1), al.release),
                Some(RuleId::St8ReleaseWithoutRequest),
                "{}",
                backend.label()
            );
            let mut p = backend.producer();
            p.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
            p.flush();
            assert_eq!(backend.call_would_violate(m, Pid::new(1), al.release), None);
        }
    }
}
