//! The pluggable detection API: [`DetectionBackend`] separates *where
//! checking runs* from *how events get there* ([`ProducerHandle`]).
//!
//! The paper's detector is one observer bolted onto one monitor
//! implementation. Scaling it up surfaced two orthogonal decisions —
//! the instrumentation point (how a monitored thread hands its events
//! to the detection layer) and the checking strategy (inline, sharded
//! workers, scheduled per-shard sweeps) — that were previously fused
//! into the runtime. This module separates them:
//!
//! * [`DetectionBackend`] is the checking side: registration, the
//!   synchronous calling-order lookahead, the periodic checkpoint,
//!   stats, violation collection and shutdown. Implementations differ
//!   only in where the work runs.
//! * [`ProducerHandle`] is the instrumentation side: a cheap
//!   **per-thread** handle that owns its own batch buffer. The hot
//!   path — [`ProducerHandle::observe`] — touches no state shared with
//!   other producers: events accumulate in the handle and leave as one
//!   bounded-channel send per batch per shard. No shared mutex is
//!   acquired per observed event.
//!
//! Three backends are provided:
//!
//! * [`InlineBackend`] — the paper's shape: one [`Detector`] behind one
//!   lock, checked synchronously on the observing thread. Its handles
//!   are unbuffered (every `observe` is a lock + check).
//! * [`ShardedBackend`] — wraps [`ShardedDetector`]: monitors partition
//!   across worker shards, each handle owns per-shard batch buffers
//!   plus its own clones of the shard inbox senders — the
//!   multi-producer ingestion front-end.
//! * [`crate::detect::ScheduledBackend`] — sharding plus a per-shard
//!   checkpoint scheduler (a ticker thread sweeps the shards
//!   round-robin for timer checks, no global barrier).
//!
//! # Why per-thread handles are sound
//!
//! Real-time (Algorithm-3) order state is **per-caller**: the
//! Request-List and path-expression NFA states are keyed by [`Pid`],
//! so events of different pids commute. A handle preserves its own
//! thread's event order (its buffer is FIFO, and per-producer channel
//! order is FIFO), which is exactly the per-pid ordering the engine's
//! per-pid watermarks require — batches from different handles may
//! interleave arbitrarily without losing or double-reporting a check.
//! Events still buffered in *some other thread's* handle at checkpoint
//! time are not lost either: the checkpoint replays the full recorded
//! window with per-pid watermark catch-up, and the straggler batch is
//! deduplicated by the same watermark when it eventually arrives.
//!
//! # Examples
//!
//! ```
//! use rmon_core::detect::{DetectionBackend, InlineBackend, ServiceConfig, ShardedBackend};
//! use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, Nanos, Pid};
//! use std::sync::Arc;
//!
//! let al = MonitorSpec::allocator("res", 1);
//! let spec = Arc::new(al.spec.clone());
//! let m = MonitorId::new(0);
//!
//! // The same driver code works against any backend.
//! let backends: Vec<Box<dyn DetectionBackend>> = vec![
//!     Box::new(InlineBackend::new(DetectorConfig::without_timeouts())),
//!     Box::new(ShardedBackend::new(
//!         DetectorConfig::without_timeouts(),
//!         ServiceConfig::new(2),
//!     )),
//! ];
//! for backend in &backends {
//!     backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
//!     let mut producer = backend.producer();
//!     producer.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.release, true));
//!     producer.flush();
//!     let vs = backend.drain_violations();
//!     assert!(!vs.is_empty(), "{}: release without request", backend.label());
//!     backend.shutdown();
//! }
//! ```

use crate::config::{DetectorConfig, Mode};
use crate::detect::service::{shard_for, ShardMsg};
use crate::detect::{Detector, ServiceConfig, ServiceStats, ShardStats, ShardedDetector};
use crate::event::Event;
use crate::ids::{MonitorId, Pid, ProcName};
use crate::rule::RuleId;
use crate::spec::MonitorSpec;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::{FaultReport, Violation};
use crossbeam::channel::{Sender, TrySendError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// What a [`DetectionBackend::checkpoint`] covers: the whole backend,
/// one worker shard, or one monitor.
///
/// Scopes exist so the periodic checking routine no longer has to be a
/// global barrier: a scheduler (or an operator) can sweep one shard at
/// a time, and a suspicious monitor can be checked on demand without
/// touching its neighbours. On the [`InlineBackend`] — one pseudo-shard
/// — `Shard(0)` is equivalent to `All` and any other shard index is an
/// empty no-op, mirroring how [`DetectionBackend::stats`] reports a
/// single pseudo-shard there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointScope {
    /// Checkpoint every registered monitor (the full fan-out).
    All,
    /// Checkpoint the monitors owned by one worker shard.
    Shard(usize),
    /// Checkpoint a single monitor.
    Monitor(MonitorId),
}

/// A source of live monitor-state observations — the paper's `s_t`
/// (§3.3.2) behind a trait, so *any* backend can run the Algorithm-1/2
/// snapshot comparisons without the caller hand-feeding it a snapshot
/// map.
///
/// The embedding runtime implements this by reading each monitor's
/// queues under its existing state lock (`rmon-rt` snapshots under the
/// same per-monitor `FastMutex` its primitives record under); tests and
/// trace drivers use a [`SnapshotTable`]. Register a provider with
/// [`DetectionBackend::set_snapshot_provider`] and every
/// [`DetectionBackend::checkpoint`] — including the scheduled backend's
/// background shard sweeps — upgrades from timer-only checking to the
/// full Algorithm-1/2/timer comparison.
///
/// # Consistency
///
/// A snapshot is only comparable against checking lists that have
/// replayed **exactly** the events recorded up to the moment it was
/// taken. Providers that observe live, concurrently-mutated monitors
/// expose [`SnapshotProvider::events_recorded`] so the checkpoint can
/// *gate* the comparison: the backend reads the counter before and
/// after taking the snapshot (a seqlock — an unchanged count brackets a
/// quiescent observation) and the engine compares only when its replay
/// has caught up to that count. A gated-out monitor keeps its timers
/// checked and its pending events replayed; the comparison simply waits
/// for a quiescent sweep instead of fabricating mismatches from events
/// still in flight. Providers serving fixed, already-consistent
/// snapshots return `None` and are compared unconditionally.
pub trait SnapshotProvider: Send + Sync + std::fmt::Debug {
    /// Observes one monitor's current `⟨EQ, CQ[], Running, R#⟩` state,
    /// or `None` if the provider does not know the monitor (it is then
    /// checked in pure event-stream mode: replay and timers, no
    /// comparison).
    fn snapshot(&self, monitor: MonitorId, now: Nanos) -> Option<MonitorState>;

    /// Bulk form of [`Self::snapshot`]: every monitor the provider can
    /// observe right now.
    fn snapshot_all(&self, now: Nanos) -> HashMap<MonitorId, MonitorState>;

    /// How many events have been recorded for `monitor` so far, or
    /// `None` if the provider's snapshots are consistent by
    /// construction (fixtures over quiescent traces). See the
    /// [consistency](SnapshotProvider#consistency) contract.
    fn events_recorded(&self, monitor: MonitorId) -> Option<u64> {
        let _ = monitor;
        None
    }
}

/// A [`SnapshotProvider`] over an updatable table — the fixture shape:
/// tests pin the observed states a trace ends in, trace drivers publish
/// the simulator's states as virtual time advances.
///
/// Optional per-monitor expected event counts turn the table into a
/// *gated* provider (see [`SnapshotProvider::events_recorded`]): a
/// backend sweeping mid-ingestion then defers the comparison until its
/// replay has consumed exactly that many events — which is what makes
/// it safe to register a table holding **final** states on a backend
/// that checkpoints **during** the drive.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::SnapshotTable;
/// use rmon_core::{MonitorId, MonitorState};
/// use std::collections::HashMap;
///
/// let table = SnapshotTable::default();
/// table.publish(MonitorId::new(0), MonitorState::with_resources(1, 2));
/// ```
#[derive(Debug, Default)]
pub struct SnapshotTable {
    inner: Mutex<SnapshotTableInner>,
}

#[derive(Debug, Default)]
struct SnapshotTableInner {
    snapshots: HashMap<MonitorId, MonitorState>,
    counts: HashMap<MonitorId, u64>,
}

impl SnapshotTable {
    /// A table pre-filled with `snapshots` and no consistency gates
    /// (every comparison runs unconditionally).
    pub fn from_snapshots(snapshots: HashMap<MonitorId, MonitorState>) -> Self {
        SnapshotTable {
            inner: Mutex::new(SnapshotTableInner { snapshots, counts: HashMap::new() }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SnapshotTableInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Publishes (or replaces) one monitor's observed state.
    pub fn publish(&self, monitor: MonitorId, state: MonitorState) {
        self.lock().snapshots.insert(monitor, state);
    }

    /// Publishes (or replaces) a whole batch of observed states.
    pub fn publish_all(&self, snapshots: HashMap<MonitorId, MonitorState>) {
        self.lock().snapshots.extend(snapshots);
    }

    /// Arms the consistency gate for `monitor`: its snapshot is only
    /// compared by a checkpoint whose replay has consumed exactly
    /// `events` events for it.
    pub fn expect_events(&self, monitor: MonitorId, events: u64) {
        self.lock().counts.insert(monitor, events);
    }
}

impl SnapshotProvider for SnapshotTable {
    fn snapshot(&self, monitor: MonitorId, _now: Nanos) -> Option<MonitorState> {
        self.lock().snapshots.get(&monitor).cloned()
    }

    fn snapshot_all(&self, _now: Nanos) -> HashMap<MonitorId, MonitorState> {
        self.lock().snapshots.clone()
    }

    fn events_recorded(&self, monitor: MonitorId) -> Option<u64> {
        self.lock().counts.get(&monitor).copied()
    }
}

/// Outcome of a non-blocking ingestion attempt
/// ([`ProducerHandle::try_observe`] / [`ProducerHandle::try_flush`]).
///
/// `Full` never means the event was lost: the handle keeps it buffered
/// and hands it over on a later (try-)flush. The value is the
/// *backpressure signal* a caller that must not block (an async
/// executor, a latency-critical hot path) reacts to — retry the flush
/// later, or escalate to the blocking [`ProducerHandle::flush`] when
/// giving up is not an option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a Full result means buffered events still await delivery"]
pub enum Backpressure {
    /// Everything handed over (or buffered below the flush threshold);
    /// nothing awaits a retry.
    Accepted,
    /// At least one shard inbox was full: part of the batch stays
    /// buffered in the handle. Retry with
    /// [`ProducerHandle::try_flush`], or block with
    /// [`ProducerHandle::flush`].
    Full,
}

impl Backpressure {
    /// Whether the backend pushed back (buffered events remain).
    pub fn is_full(self) -> bool {
        matches!(self, Backpressure::Full)
    }
}

/// A per-thread ingestion handle: the instrumentation side of the
/// detection API.
///
/// Handles are created by [`DetectionBackend::producer`], are `Send`
/// (move one into each observing thread) and are **not** shared: all
/// methods take `&mut self`, and the whole point of the type is that
/// `observe` works against handle-local state only.
///
/// A handle buffers events and hands them to the backend in batches;
/// [`ProducerHandle::flush`] forces the hand-off. Violations never
/// surface through the handle — they are collected by the backend
/// ([`DetectionBackend::drain_violations`]).
///
/// Dropping a handle flushes it (while the backend is open), so
/// buffered events are not lost when an observing thread exits.
pub trait ProducerHandle: Send + std::fmt::Debug {
    /// Ingests one event. May buffer; may run the real-time checks
    /// synchronously (the inline backend does). Events observed after
    /// [`DetectionBackend::shutdown`] are silently dropped.
    fn observe(&mut self, event: Event);

    /// Hands any buffered events to the backend. After `flush`, a
    /// subsequent backend barrier ([`DetectionBackend::checkpoint_window`],
    /// [`DetectionBackend::drain_violations`]) reflects everything this
    /// handle observed.
    fn flush(&mut self);

    /// Non-blocking [`Self::observe`]: ingests the event into the
    /// handle's buffer and, if that crosses the flush threshold,
    /// attempts a non-blocking hand-off. Returns
    /// [`Backpressure::Full`] when a shard inbox pushed back — the
    /// event (and the rest of the batch) stays buffered for a later
    /// retry; nothing is ever dropped by backpressure.
    ///
    /// The default forwards to the blocking [`Self::observe`] and
    /// reports [`Backpressure::Accepted`] — correct for handles that
    /// never block on a queue (the inline backend's synchronous
    /// handle).
    fn try_observe(&mut self, event: Event) -> Backpressure {
        self.observe(event);
        Backpressure::Accepted
    }

    /// Non-blocking [`Self::flush`]: hands over whatever the shard
    /// inboxes will take right now and reports whether anything had to
    /// stay behind. Pairs with [`Self::try_observe`] for bounded-retry
    /// ingestion policies (try, yield, retry, eventually block).
    fn try_flush(&mut self) -> Backpressure {
        self.flush();
        Backpressure::Accepted
    }

    /// Events observed but not yet handed to the backend.
    fn pending(&self) -> usize;

    /// Whether the backend behind this handle has shut down (stale
    /// handles can be pruned by their owners).
    fn is_closed(&self) -> bool;
}

/// A detection engine behind a uniform, shareable interface: the
/// checking side of the detection API.
///
/// Backends are `Send + Sync` and designed to live in an
/// `Arc<dyn DetectionBackend>` shared by a runtime, its monitors and
/// its checker thread, with each observing thread holding its own
/// [`ProducerHandle`].
///
/// # Contract
///
/// * **Ingestion order** — each pid's events must reach the backend in
///   `seq` order (one thread, one handle satisfies this); different
///   pids and different handles may interleave freely.
/// * **Barriers** — `checkpoint_window`, `checkpoint`,
///   `drain_violations` and `stats` see every event previously
///   *flushed* to the backend. Events still buffered in another
///   thread's handle are picked up by the next window checkpoint's
///   replay (per-pid watermarks deduplicate), or by a later scoped
///   checkpoint once they arrive.
/// * **Lookahead** — `call_would_violate` answers from the caller's
///   per-pid order state; flush the calling thread's handle first so
///   the answer reflects that thread's own history.
/// * **Retention** — ingested events are retained for the periodic
///   Algorithm-1/2 replay until *some* checkpoint form consumes them
///   (`checkpoint` or `checkpoint_window`; the scheduled backend's
///   background sweeps do it automatically once a snapshot provider is
///   registered, which an embedding runtime does at build time).
///   Deployments that only ever drain real-time violations must still
///   checkpoint periodically, exactly as the recorded window itself
///   must be drained — otherwise the pending replay window grows with
///   the stream.
/// * **Shutdown** — stops background work and drops subsequent
///   ingestion; every method stays safe to call afterwards.
pub trait DetectionBackend: Send + Sync + std::fmt::Debug {
    /// Registers a monitor with its declaration and initial observed
    /// state. Events for unregistered monitors are ignored.
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    );

    /// Creates a fresh per-thread ingestion handle.
    fn producer(&self) -> Box<dyn ProducerHandle>;

    /// Non-mutating real-time calling-order lookahead (ST-8): would an
    /// `Enter` of `proc_name` by `pid` violate right now? Runtimes
    /// that *prevent* faults (`rmon_rt`'s `OrderPolicy::Deny`) consult
    /// this before executing the call.
    fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId>;

    /// Registers the source of live monitor-state observations that
    /// [`Self::checkpoint`] compares against. Without a provider,
    /// scoped checkpoints run in pure event-stream mode (replay and
    /// timers, no Algorithm-1/2 snapshot comparison) and the scheduled
    /// backend's background sweeps stay timer-only.
    ///
    /// An embedding runtime registers itself here at build time; the
    /// provider must observe the same monitors (same
    /// [`MonitorId`] namespace) this backend was registered with.
    fn set_snapshot_provider(&self, provider: Arc<dyn SnapshotProvider>);

    /// Runs the periodic checking routine over `scope` **without a
    /// caller-drained window**: each in-scope monitor's pending
    /// real-time events are replayed through Algorithms 1–2, its state
    /// is observed through the registered [`SnapshotProvider`] (gated
    /// for consistency — see the provider's contract) and compared, and
    /// its timers are checked. This is the full §3.3.2 check as a
    /// *backend capability*: inline, sharded and scheduled backends all
    /// honour every scope, so per-shard sweeps and on-demand per-monitor
    /// checks need no global barrier.
    fn checkpoint(&self, scope: CheckpointScope, now: Nanos) -> FaultReport;

    /// Runs the periodic checking routine (Algorithms 1–3 plus timers)
    /// over the explicitly drained window `events` and the observed
    /// `snapshots`, returning the merged report in canonical order —
    /// the synchronous-barrier form [`Self::checkpoint`] generalizes.
    /// Events the backend already ingested in real time are
    /// deduplicated against the window by the engine's per-caller
    /// watermarks.
    fn checkpoint_window(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport;

    /// Ingestion counters, uniform across backends: per-shard entries
    /// for sharded backends, a single pseudo-shard for inline. The
    /// snapshot is quiescent with respect to everything flushed before
    /// the call.
    fn stats(&self) -> ServiceStats;

    /// Takes all real-time violations collected since the last drain.
    #[must_use = "dropping the return value discards detected violations"]
    fn drain_violations(&self) -> Vec<Violation>;

    /// Stops background threads and drops subsequent ingestion.
    /// Idempotent; implicitly performed on drop.
    fn shutdown(&self);

    /// A short static label for diagnostics (`"inline"`, `"sharded"`,
    /// `"scheduled"`, …).
    fn label(&self) -> &'static str;

    /// The shard a monitor's checking runs on. Backends without
    /// sharding live on a single pseudo-shard `0`; sharded backends
    /// override this with their partition function so callers (e.g. a
    /// scoped-checkpoint barrier resolving
    /// [`CheckpointScope::Shard`] to the monitors it covers) can map
    /// monitors to shards without knowing the backend flavour.
    fn shard_of(&self, monitor: MonitorId) -> usize {
        let _ = monitor;
        0
    }

    /// Registers a monitor starting from the canonical empty state
    /// ([`MonitorSpec::empty_state`]).
    fn register_empty(&self, monitor: MonitorId, spec: Arc<MonitorSpec>, now: Nanos) {
        let initial = spec.empty_state();
        self.register(monitor, spec, &initial, now);
    }

    /// The instrumentation [`Mode`] a monitor's observers should use
    /// *right now*. The paper's detector is synchronous, so the
    /// default is [`Mode::Sync`]; mode-aware backends (the
    /// `AsyncBackend`) answer from their per-monitor mode cells, which
    /// the adaptive controller may move between checkpoints. Embedding
    /// runtimes consult this on the record path to decide how long a
    /// monitor operation blocks on event hand-off.
    fn instrumentation_mode(&self, monitor: MonitorId) -> Mode {
        let _ = monitor;
        Mode::Sync
    }
}

/// Gathers gated snapshots for `monitors` from a provider, running the
/// seqlock dance per monitor: read the recorded-event counter, take the
/// snapshot, read the counter again. An unchanged counter brackets a
/// quiescent observation and becomes that monitor's consistency gate;
/// a counter that moved (recording raced the observation) drops the
/// snapshot from this sweep — the monitor is still replayed and
/// timer-checked, and a later sweep picks the comparison up.
///
/// Providers without counters (`events_recorded` → `None`) are trusted:
/// their snapshots are compared ungated.
///
/// Public because remote deployments run the dance on the *worker*
/// side: `rmon-net`'s `RemoteBackend` answers the service's checkpoint
/// fan-out by gathering gated snapshots from its local provider and
/// shipping `(snapshots, gates)` over the wire.
pub fn gather_snapshots(
    provider: Option<&dyn SnapshotProvider>,
    monitors: &[MonitorId],
    now: Nanos,
) -> (HashMap<MonitorId, MonitorState>, HashMap<MonitorId, u64>) {
    let mut snapshots = HashMap::new();
    let mut gates = HashMap::new();
    if let Some(provider) = provider {
        for &monitor in monitors {
            let before = provider.events_recorded(monitor);
            let Some(state) = provider.snapshot(monitor, now) else { continue };
            match (before, provider.events_recorded(monitor)) {
                (Some(a), Some(b)) if a == b => {
                    gates.insert(monitor, a);
                    snapshots.insert(monitor, state);
                }
                (None, None) => {
                    snapshots.insert(monitor, state);
                }
                // The observation raced active recording: skip the
                // comparison this sweep rather than risk a mismatch
                // fabricated from in-flight events.
                _ => {}
            }
        }
    }
    (snapshots, gates)
}

/// Shared storage for a backend's registered [`SnapshotProvider`] —
/// `Arc`ed so detached consumers (the scheduler ticker) see later
/// registrations.
pub(crate) type ProviderSlot = Arc<Mutex<Option<Arc<dyn SnapshotProvider>>>>;

pub(crate) fn provider_of(slot: &ProviderSlot) -> Option<Arc<dyn SnapshotProvider>> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).clone()
}

// ---------------------------------------------------------------------
// Inline
// ---------------------------------------------------------------------

/// Everything behind the inline backend's single lock.
#[derive(Debug)]
struct InlineState {
    det: Detector,
    violations: Vec<Violation>,
    counters: ShardStats,
}

#[derive(Debug)]
struct InlineShared {
    state: Mutex<InlineState>,
    open: AtomicBool,
    provider: ProviderSlot,
}

impl InlineShared {
    /// Poison-tolerant lock: a panicking observer must not wedge the
    /// backend for every other thread.
    fn lock(&self) -> MutexGuard<'_, InlineState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The paper's shape behind the trait: one [`Detector`] behind one
/// lock, real-time checks running synchronously on the observing
/// thread.
///
/// Its producer handles are unbuffered — each [`ProducerHandle::observe`]
/// acquires the detector lock, which is precisely the contention the
/// sharded backends exist to remove; `InlineBackend` is the baseline
/// they are measured against, and the zero-extra-threads default.
///
/// [`DetectionBackend::stats`] reports one pseudo-shard whose counters
/// track the events actually ingested through handles.
#[derive(Debug)]
pub struct InlineBackend {
    shared: Arc<InlineShared>,
}

impl InlineBackend {
    /// Creates an inline backend with the given timing configuration.
    pub fn new(cfg: DetectorConfig) -> Self {
        InlineBackend {
            shared: Arc::new(InlineShared {
                state: Mutex::new(InlineState {
                    det: Detector::new(cfg),
                    violations: Vec::new(),
                    counters: ShardStats::default(),
                }),
                open: AtomicBool::new(true),
                provider: ProviderSlot::default(),
            }),
        }
    }
}

impl DetectionBackend for InlineBackend {
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        let mut st = self.shared.lock();
        st.det.register(monitor, spec, initial, now);
        st.counters.monitors += 1;
    }

    fn producer(&self) -> Box<dyn ProducerHandle> {
        Box::new(InlineProducer { shared: Arc::clone(&self.shared), scratch: Vec::new() })
    }

    fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        self.shared.lock().det.call_would_violate(monitor, pid, proc_name)
    }

    fn set_snapshot_provider(&self, provider: Arc<dyn SnapshotProvider>) {
        *self.shared.provider.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) =
            Some(provider);
    }

    fn checkpoint(&self, scope: CheckpointScope, now: Nanos) -> FaultReport {
        // One pseudo-shard: Shard(0) covers everything, other indices
        // cover nothing (mirrors `stats`).
        let (monitors, only) = match scope {
            CheckpointScope::All | CheckpointScope::Shard(0) => {
                (self.shared.lock().det.monitor_ids(), None)
            }
            CheckpointScope::Shard(_) => return FaultReport::default(),
            CheckpointScope::Monitor(m) => (vec![m], Some(m)),
        };
        // Snapshots are gathered *before* taking the detector lock: a
        // live provider reads monitor state under the monitors' own
        // locks, and observing threads acquire those locks before the
        // detector lock (the observe path) — gathering under the
        // detector lock would invert that order.
        let provider = provider_of(&self.shared.provider);
        let (snapshots, gates) = gather_snapshots(provider.as_deref(), &monitors, now);
        self.shared.lock().det.checkpoint_scoped(now, &snapshots, &gates, only)
    }

    fn checkpoint_window(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        self.shared.lock().det.checkpoint(now, events, snapshots)
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats { shards: vec![self.shared.lock().counters] }
    }

    fn drain_violations(&self) -> Vec<Violation> {
        std::mem::take(&mut self.shared.lock().violations)
    }

    fn shutdown(&self) {
        self.shared.open.store(false, Ordering::Release);
    }

    fn label(&self) -> &'static str {
        "inline"
    }
}

/// The inline backend's unbuffered handle.
#[derive(Debug)]
struct InlineProducer {
    shared: Arc<InlineShared>,
    scratch: Vec<Violation>,
}

impl ProducerHandle for InlineProducer {
    fn observe(&mut self, event: Event) {
        if !self.shared.open.load(Ordering::Acquire) {
            return;
        }
        let mut st = self.shared.lock();
        st.det.observe_into(&event, &mut self.scratch);
        st.counters.batches += 1;
        st.counters.events_observed += 1;
        st.counters.violations += self.scratch.len() as u64;
        st.violations.append(&mut self.scratch);
    }

    fn flush(&mut self) {}

    fn pending(&self) -> usize {
        0
    }

    fn is_closed(&self) -> bool {
        !self.shared.open.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// Sharded
// ---------------------------------------------------------------------

/// The multi-producer ingestion front-end over [`ShardedDetector`]:
/// monitors partition across worker shards, and every producer handle
/// owns its own per-shard batch buffers plus private clones of the
/// shard inbox senders — the caller-side hot path shares nothing with
/// other producers.
///
/// Compare [`InlineBackend`], where each observation contends on one
/// detector lock, and the pre-trait runtime backend, where all threads
/// funneled through one shared batch-buffer mutex.
#[derive(Debug)]
pub struct ShardedBackend {
    svc: ShardedDetector,
    batch: usize,
    /// When set, new handles adapt their batch between these bounds
    /// instead of using the fixed `batch`.
    adaptive: Option<AdaptiveBatch>,
    /// The configured base instrumentation mode, answered uniformly
    /// for every monitor (per-monitor adaptation lives in the
    /// `AsyncBackend` wrapper).
    mode: Mode,
    open: Arc<AtomicBool>,
    /// The registered snapshot source, shared (`Arc`) so a scheduler
    /// ticker holding a clone observes later registrations.
    provider: ProviderSlot,
}

/// Default events buffered per handle before a flush.
pub const DEFAULT_INGEST_BATCH: usize = 64;

/// Grow/shrink policy for a producer handle's ingest batch size,
/// driven by channel pressure.
///
/// A fixed batch size is a latency/throughput compromise chosen
/// blind: small batches keep detection latency low but pay one channel
/// send per few events; large batches amortize the sends but hold
/// events back. The adaptive policy lets each handle find its own
/// operating point from the only signal that matters — whether the
/// shard inboxes are keeping up:
///
/// * a flush that found **no pressure** (every shard accepted its
///   batch without blocking) **doubles** the batch, up to `max` —
///   the shards are keeping up, so trade latency for throughput;
/// * a flush that **hit pressure** (some shard's bounded inbox was
///   full and the send had to block) **halves** the batch, down to
///   `min` — the checkers are behind, so stop accumulating latency on
///   top of backpressure.
///
/// The doubling/halving curve is pinned by unit test; handles start at
/// `min` so an idle stream keeps its latency floor.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::AdaptiveBatch;
///
/// let mut b = AdaptiveBatch::new(2, 16);
/// assert_eq!(b.current(), 2);
/// assert_eq!(b.on_flush(false), 4); // no pressure: grow
/// assert_eq!(b.on_flush(false), 8);
/// assert_eq!(b.on_flush(true), 4); // pressure: shrink
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBatch {
    min: usize,
    max: usize,
    current: usize,
}

impl AdaptiveBatch {
    /// A policy bounded by `[min, max]` (both clamped to at least 1,
    /// `max` to at least `min`), starting at `min`.
    pub fn new(min: usize, max: usize) -> Self {
        let min = min.max(1);
        let max = max.max(min);
        AdaptiveBatch { min, max, current: min }
    }

    /// The batch size the next flush threshold uses.
    pub fn current(&self) -> usize {
        self.current
    }

    /// The lower bound.
    pub fn min(&self) -> usize {
        self.min
    }

    /// The upper bound.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Feeds one flush outcome into the policy and returns the new
    /// batch size: halve on pressure (floor `min`), double otherwise
    /// (cap `max`).
    pub fn on_flush(&mut self, pressured: bool) -> usize {
        self.current = if pressured {
            (self.current / 2).max(self.min)
        } else {
            (self.current * 2).min(self.max)
        };
        self.current
    }
}

impl ShardedBackend {
    /// Spawns the shard workers (see [`ShardedDetector::new`]) with the
    /// default per-handle ingest batch ([`DEFAULT_INGEST_BATCH`]).
    pub fn new(cfg: DetectorConfig, service: ServiceConfig) -> Self {
        ShardedBackend {
            svc: ShardedDetector::new(cfg, service),
            batch: DEFAULT_INGEST_BATCH,
            adaptive: None,
            mode: cfg.mode,
            open: Arc::new(AtomicBool::new(true)),
            provider: ProviderSlot::default(),
        }
    }

    /// Overrides how many events a producer handle buffers before
    /// flushing a batch to the shards (clamped to at least 1). Handles
    /// created *after* the call use the new size. Clears a previously
    /// configured adaptive policy.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.set_batch(batch);
        self
    }

    /// Makes handles created after the call size their batches
    /// adaptively between `min` and `max` based on channel pressure
    /// (see [`AdaptiveBatch`]).
    pub fn with_adaptive_batch(mut self, min: usize, max: usize) -> Self {
        self.set_adaptive_batch(min, max);
        self
    }

    /// In-place form of [`Self::with_batch`], for wrappers that cannot
    /// move the backend.
    pub fn set_batch(&mut self, batch: usize) {
        self.batch = batch.max(1);
        self.adaptive = None;
    }

    /// In-place form of [`Self::with_adaptive_batch`].
    pub fn set_adaptive_batch(&mut self, min: usize, max: usize) {
        self.adaptive = Some(AdaptiveBatch::new(min, max));
    }

    /// The wrapped service (shard topology, counters).
    pub fn service(&self) -> &ShardedDetector {
        &self.svc
    }

    /// The per-handle ingest batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The shared provider slot, for wrappers (the scheduled backend's
    /// ticker) that need to observe registrations after spawn time.
    pub(crate) fn provider_slot(&self) -> ProviderSlot {
        Arc::clone(&self.provider)
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        // Mark outstanding producer handles closed so their owners can
        // prune them; the wrapped service joins its workers in its own
        // drop.
        self.open.store(false, Ordering::Release);
    }
}

impl DetectionBackend for ShardedBackend {
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        self.svc.register(monitor, spec, initial, now);
    }

    fn producer(&self) -> Box<dyn ProducerHandle> {
        let senders = self.svc.shard_senders();
        let bufs = senders.iter().map(|_| Vec::new()).collect();
        Box::new(ShardedProducer {
            senders,
            bufs,
            buffered: 0,
            batch: self.adaptive.map(|a| a.current()).unwrap_or(self.batch),
            adaptive: self.adaptive,
            pressured: false,
            open: Arc::clone(&self.open),
        })
    }

    fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        self.svc.call_would_violate(monitor, pid, proc_name)
    }

    fn set_snapshot_provider(&self, provider: Arc<dyn SnapshotProvider>) {
        *self.provider.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(provider);
    }

    fn checkpoint(&self, scope: CheckpointScope, now: Nanos) -> FaultReport {
        let n = self.svc.shards();
        let (shards, only) = match scope {
            CheckpointScope::All => ((0..n).collect::<Vec<_>>(), None),
            CheckpointScope::Shard(s) if s < n => (vec![s], None),
            CheckpointScope::Shard(_) => return FaultReport::default(),
            CheckpointScope::Monitor(m) => (vec![self.svc.shard_of(m)], Some(m)),
        };
        let provider = provider_of(&self.provider);
        let senders = self.svc.shard_senders();
        // Request every in-scope shard first, then collect: the shards
        // check concurrently, so the checkpoint costs the slowest
        // shard's latency rather than the sum.
        let replies: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let monitors = match only {
                    Some(m) => vec![m],
                    None => self.svc.monitors_on(shard),
                };
                let (snapshots, gates) = gather_snapshots(provider.as_deref(), &monitors, now);
                ShardedDetector::request_checkpoint_on(
                    &senders, shard, now, snapshots, gates, only, false,
                )
            })
            .collect();
        FaultReport::merged(replies.into_iter().map(|rx| rx.recv().unwrap_or_default()))
    }

    fn checkpoint_window(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        self.svc.checkpoint(now, events, snapshots)
    }

    fn stats(&self) -> ServiceStats {
        self.svc.flush();
        self.svc.stats()
    }

    fn drain_violations(&self) -> Vec<Violation> {
        self.svc.flush();
        self.svc.drain_violations()
    }

    fn shutdown(&self) {
        self.open.store(false, Ordering::Release);
        self.svc.shutdown();
    }

    fn label(&self) -> &'static str {
        "sharded"
    }

    fn shard_of(&self, monitor: MonitorId) -> usize {
        self.svc.shard_of(monitor)
    }

    fn instrumentation_mode(&self, _monitor: MonitorId) -> Mode {
        self.mode
    }
}

/// The sharded backends' buffered handle: per-shard buffers drained by
/// one channel send per shard per batch.
#[derive(Debug)]
struct ShardedProducer {
    senders: Vec<Sender<ShardMsg>>,
    bufs: Vec<Vec<Event>>,
    buffered: usize,
    batch: usize,
    /// Per-handle adaptive policy (each handle adapts to the pressure
    /// *it* observes; handles share no state).
    adaptive: Option<AdaptiveBatch>,
    /// A previous `try_flush` left a retained batch behind. While set,
    /// every `try_observe` re-attempts delivery regardless of the
    /// flush threshold — a handle whose retained batch dropped
    /// `buffered` back below `batch` must not sit on those events
    /// until new arrivals refill the threshold (retained-event
    /// starvation).
    pressured: bool,
    open: Arc<AtomicBool>,
}

impl ProducerHandle for ShardedProducer {
    fn observe(&mut self, event: Event) {
        if !self.open.load(Ordering::Acquire) {
            return;
        }
        let shard = shard_for(event.monitor, self.senders.len());
        self.bufs[shard].push(event);
        self.buffered += 1;
        if self.buffered >= self.batch {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buffered == 0 {
            return;
        }
        let mut pressured = false;
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                // Probe without blocking first: a full inbox is the
                // pressure signal the adaptive policy feeds on. The
                // batch is then delivered with a blocking send — the
                // same backpressure as before. A disconnected channel
                // means the worker shut down; the events are dropped
                // exactly like post-shutdown observes.
                match self.senders[shard].try_send(ShardMsg::Batch(std::mem::take(buf))) {
                    Ok(()) => {}
                    Err(TrySendError::Full(msg)) => {
                        pressured = true;
                        let _ = self.senders[shard].send(msg);
                    }
                    Err(TrySendError::Disconnected(_)) => {}
                }
            }
        }
        self.buffered = 0;
        self.pressured = false;
        if let Some(policy) = &mut self.adaptive {
            self.batch = policy.on_flush(pressured);
        }
    }

    fn try_observe(&mut self, event: Event) -> Backpressure {
        if !self.open.load(Ordering::Acquire) {
            // Post-shutdown observes are dropped, like observe();
            // nothing awaits a retry.
            return Backpressure::Accepted;
        }
        let shard = shard_for(event.monitor, self.senders.len());
        self.bufs[shard].push(event);
        self.buffered += 1;
        // A pressured handle retries on *every* observe, not only at
        // the flush threshold: a retained batch may have left
        // `buffered < batch`, and waiting for new arrivals to refill
        // the threshold would starve the retained events if the stream
        // goes quiet (see the `pressured` field).
        if self.buffered >= self.batch || self.pressured {
            self.try_flush()
        } else {
            Backpressure::Accepted
        }
    }

    fn try_flush(&mut self) -> Backpressure {
        if self.buffered == 0 {
            return Backpressure::Accepted;
        }
        let mut pressured = false;
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                match self.senders[shard].try_send(ShardMsg::Batch(std::mem::take(buf))) {
                    Ok(()) => {}
                    Err(TrySendError::Full(msg)) => {
                        // The inbox pushed back: keep the batch in the
                        // handle for a later retry (never dropped).
                        if let ShardMsg::Batch(batch) = msg {
                            *buf = batch;
                        }
                        pressured = true;
                    }
                    Err(TrySendError::Disconnected(_)) => {}
                }
            }
        }
        self.buffered = self.bufs.iter().map(Vec::len).sum();
        self.pressured = pressured;
        // Pressure feeds the same adaptive policy as a blocking flush —
        // a refused hand-off halves the batch exactly like a blocking
        // one (pinned by unit test).
        if let Some(policy) = &mut self.adaptive {
            self.batch = policy.on_flush(pressured);
        }
        if pressured {
            Backpressure::Full
        } else {
            Backpressure::Accepted
        }
    }

    fn pending(&self) -> usize {
        self.buffered
    }

    fn is_closed(&self) -> bool {
        !self.open.load(Ordering::Acquire)
    }
}

impl Drop for ShardedProducer {
    fn drop(&mut self) {
        if self.open.load(Ordering::Acquire) {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AllocatorSpec;

    fn allocator_spec() -> (Arc<MonitorSpec>, AllocatorSpec) {
        let al = MonitorSpec::allocator("res", 1);
        (Arc::new(al.spec.clone()), al)
    }

    /// A deterministic faulty mix for `monitors` allocators: per
    /// monitor, pid 1 double-requests and pid 2 releases unrequested.
    fn faulty_events(monitors: u32) -> Vec<Event> {
        let (_, al) = allocator_spec();
        let mut events = Vec::new();
        let mut seq = 0;
        for id in 0..monitors {
            let m = MonitorId::new(id);
            for (pid, proc_name) in [(1, al.request), (1, al.request), (2, al.release)] {
                seq += 1;
                events.push(Event::enter(
                    seq,
                    Nanos::new(seq * 10),
                    m,
                    Pid::new(pid),
                    proc_name,
                    false,
                ));
            }
        }
        events
    }

    fn drain_after_flush(backend: &dyn DetectionBackend) -> Vec<Violation> {
        let mut vs = backend.drain_violations();
        vs.sort_by_key(|v| (v.monitor, v.event_seq, v.rule));
        vs
    }

    fn backends() -> Vec<Box<dyn DetectionBackend>> {
        let cfg = DetectorConfig::without_timeouts();
        vec![
            Box::new(InlineBackend::new(cfg)),
            Box::new(ShardedBackend::new(cfg, ServiceConfig::new(1))),
            Box::new(ShardedBackend::new(cfg, ServiceConfig::new(4)).with_batch(4)),
        ]
    }

    #[test]
    fn all_backends_report_the_same_violations_through_one_handle() {
        let (spec, _) = allocator_spec();
        let events = faulty_events(8);
        let mut reference: Option<Vec<Violation>> = None;
        for backend in backends() {
            for id in 0..8 {
                backend.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            }
            let mut producer = backend.producer();
            for e in &events {
                producer.observe(*e);
            }
            producer.flush();
            let got = drain_after_flush(backend.as_ref());
            assert!(!got.is_empty());
            match &reference {
                Some(want) => assert_eq!(&got, want, "backend {}", backend.label()),
                None => reference = Some(got),
            }
        }
    }

    #[test]
    fn two_handles_split_by_pid_match_single_handle_results() {
        // The multi-producer shape: each pid's stream flows through its
        // own handle, handles flush at different times (batch 1 vs
        // batch 1000), so batches interleave at the shards.
        let (spec, _) = allocator_spec();
        let events = faulty_events(6);
        let single = ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(3));
        let split = ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(3));
        for id in 0..6 {
            single.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            split.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
        }
        let mut p = single.producer();
        for e in &events {
            p.observe(*e);
        }
        p.flush();
        let want = drain_after_flush(&single);

        let mut eager = split.producer(); // flushed after every event
        let mut lazy = split.producer(); // flushed only at the end
        for e in &events {
            if e.pid == Pid::new(1) {
                lazy.observe(*e);
            } else {
                eager.observe(*e);
                eager.flush();
            }
        }
        lazy.flush();
        let got = drain_after_flush(&split);
        assert_eq!(got, want);
    }

    #[test]
    fn stats_are_uniform_and_count_ingested_events() {
        let (spec, al) = allocator_spec();
        for backend in backends() {
            backend.register_empty(MonitorId::new(0), Arc::clone(&spec), Nanos::ZERO);
            let mut p = backend.producer();
            p.observe(Event::enter(
                1,
                Nanos::new(10),
                MonitorId::new(0),
                Pid::new(1),
                al.request,
                true,
            ));
            p.flush();
            let stats = backend.stats();
            assert!(stats.shard_count() >= 1, "{}", backend.label());
            assert_eq!(stats.total_events(), 1, "{}", backend.label());
            assert_eq!(
                stats.shards.iter().map(|s| s.monitors).sum::<u64>(),
                1,
                "{}",
                backend.label()
            );
        }
    }

    #[test]
    fn shutdown_drops_subsequent_observes_everywhere() {
        let (spec, al) = allocator_spec();
        for backend in backends() {
            backend.register_empty(MonitorId::new(0), Arc::clone(&spec), Nanos::ZERO);
            let mut p = backend.producer();
            backend.shutdown();
            assert!(p.is_closed(), "{}", backend.label());
            p.observe(Event::enter(
                1,
                Nanos::new(10),
                MonitorId::new(0),
                Pid::new(1),
                al.release,
                true,
            ));
            p.flush();
            assert!(backend.drain_violations().is_empty(), "{}", backend.label());
        }
    }

    #[test]
    fn dropping_a_handle_flushes_buffered_events() {
        let (spec, al) = allocator_spec();
        let backend =
            ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(2))
                .with_batch(1000);
        backend.register_empty(MonitorId::new(0), Arc::clone(&spec), Nanos::ZERO);
        let mut p = backend.producer();
        p.observe(Event::enter(
            1,
            Nanos::new(10),
            MonitorId::new(0),
            Pid::new(1),
            al.release,
            true,
        ));
        assert_eq!(p.pending(), 1);
        drop(p);
        assert!(!backend.drain_violations().is_empty());
    }

    #[test]
    fn adaptive_batch_policy_is_pinned() {
        // The exact grow/shrink curve: double on a clean flush (cap
        // max), halve on a pressured flush (floor min), starting at
        // min.
        let mut b = AdaptiveBatch::new(2, 16);
        assert_eq!((b.min(), b.max(), b.current()), (2, 16, 2));
        let growth: Vec<usize> = (0..5).map(|_| b.on_flush(false)).collect();
        assert_eq!(growth, [4, 8, 16, 16, 16], "doubles and saturates at max");
        let shrink: Vec<usize> = (0..4).map(|_| b.on_flush(true)).collect();
        assert_eq!(shrink, [8, 4, 2, 2], "halves and saturates at min");
        // Recovery after pressure clears.
        assert_eq!(b.on_flush(false), 4);
        // Degenerate bounds are clamped.
        let b = AdaptiveBatch::new(0, 0);
        assert_eq!((b.min(), b.max(), b.current()), (1, 1, 1));
        let b = AdaptiveBatch::new(8, 2);
        assert_eq!((b.min(), b.max()), (8, 8), "max is clamped up to min");
    }

    #[test]
    fn adaptive_handle_grows_batch_while_unpressured() {
        // With a deep inbox the shards always keep up, so the handle's
        // flush threshold doubles after every flush: flush points land
        // after 1, then 2, then 4, then 8 buffered events.
        let (spec, al) = allocator_spec();
        let backend =
            ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(1))
                .with_adaptive_batch(1, 8);
        backend.register_empty(MonitorId::new(0), Arc::clone(&spec), Nanos::ZERO);
        let mut p = backend.producer();
        let mut flush_gaps = Vec::new();
        let mut since_flush = 0;
        for seq in 1..=32u64 {
            p.observe(Event::enter(
                seq,
                Nanos::new(seq * 10),
                MonitorId::new(0),
                Pid::new(1),
                al.request,
                seq == 1,
            ));
            since_flush += 1;
            if p.pending() == 0 {
                flush_gaps.push(since_flush);
                since_flush = 0;
            }
        }
        assert_eq!(
            &flush_gaps[..4],
            &[1, 2, 4, 8],
            "batch must double while the channel absorbs every flush: {flush_gaps:?}"
        );
        assert!(flush_gaps[4..].iter().all(|&g| g == 8), "saturates at max: {flush_gaps:?}");
        p.flush();
        let stats = backend.stats();
        assert_eq!(stats.total_events(), 32);
        backend.shutdown();
    }

    #[test]
    fn adaptive_handles_report_the_same_violations() {
        // Equivalence: the adaptive batch only changes *when* batches
        // flush, never what is detected.
        let (spec, _) = allocator_spec();
        let events = faulty_events(6);
        let fixed = ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(2));
        let adaptive =
            ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(2))
                .with_adaptive_batch(1, 4);
        for id in 0..6 {
            fixed.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            adaptive.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
        }
        let mut want_p = fixed.producer();
        let mut got_p = adaptive.producer();
        for e in &events {
            want_p.observe(*e);
            got_p.observe(*e);
        }
        want_p.flush();
        got_p.flush();
        assert_eq!(drain_after_flush(&adaptive), drain_after_flush(&fixed));
    }

    /// A handle wired to a 1-deep inbox nobody drains: the
    /// deterministic way to hit real channel backpressure.
    fn stalled_producer(
        adaptive: Option<AdaptiveBatch>,
    ) -> (ShardedProducer, crossbeam::channel::Receiver<ShardMsg>) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let producer = ShardedProducer {
            senders: vec![tx],
            bufs: vec![Vec::new()],
            buffered: 0,
            batch: adaptive.map(|a| a.current()).unwrap_or(1),
            adaptive,
            pressured: false,
            open: Arc::new(AtomicBool::new(true)),
        };
        (producer, rx)
    }

    fn event_for(seq: u64, proc_name: crate::ids::ProcName) -> Event {
        Event::enter(seq, Nanos::new(seq * 10), MonitorId::new(0), Pid::new(1), proc_name, true)
    }

    #[test]
    fn try_observe_reports_full_on_a_full_inbox_and_keeps_the_events() {
        let (_, al) = allocator_spec();
        let (mut p, rx) = stalled_producer(None);
        // First batch fills the 1-deep inbox.
        assert_eq!(p.try_observe(event_for(1, al.request)), Backpressure::Accepted);
        assert_eq!(p.pending(), 0);
        // Second batch has nowhere to go: Full, and the event stays
        // buffered in the handle — backpressure never drops.
        assert_eq!(p.try_observe(event_for(2, al.release)), Backpressure::Full);
        assert_eq!(p.pending(), 1);
        // Retrying without draining stays Full.
        assert_eq!(p.try_flush(), Backpressure::Full);
        assert_eq!(p.pending(), 1);
        // Drain the inbox: the retry now delivers the retained batch.
        assert!(matches!(rx.recv(), Ok(ShardMsg::Batch(b)) if b.len() == 1));
        assert_eq!(p.try_flush(), Backpressure::Accepted);
        assert_eq!(p.pending(), 0);
        assert!(matches!(rx.recv(), Ok(ShardMsg::Batch(b)) if b.len() == 1 && b[0].seq == 2));
    }

    #[test]
    fn try_flush_on_an_empty_handle_is_accepted() {
        let (mut p, _rx) = stalled_producer(None);
        assert_eq!(p.try_flush(), Backpressure::Accepted);
    }

    /// The retained-event starvation regression: a `try_flush` that
    /// delivers some shards while one shard's inbox refuses its batch
    /// leaves `buffered < batch`. Such a handle must keep re-offering
    /// the retained batch on subsequent `try_observe`s — waiting for
    /// new arrivals to refill the flush threshold would park the
    /// retained events forever on a quiet stream, even after the shard
    /// drains.
    #[test]
    fn retained_events_are_reoffered_below_the_flush_threshold() {
        let (_, al) = allocator_spec();
        // Two 1-deep shard inboxes; shard 0's is full before the run.
        let (tx0, rx0) = crossbeam::channel::bounded(1);
        let (tx1, rx1) = crossbeam::channel::bounded(1);
        tx0.try_send(ShardMsg::Batch(Vec::new())).unwrap();
        let mut p = ShardedProducer {
            senders: vec![tx0, tx1],
            bufs: vec![Vec::new(), Vec::new()],
            buffered: 0,
            batch: 8,
            adaptive: None,
            pressured: false,
            open: Arc::new(AtomicBool::new(true)),
        };
        let m0 = (0u32..).map(MonitorId::new).find(|&m| shard_for(m, 2) == 0).unwrap();
        let m1 = (0u32..).map(MonitorId::new).find(|&m| shard_for(m, 2) == 1).unwrap();
        let ev = |seq: u64, m: MonitorId| {
            Event::enter(seq, Nanos::new(seq * 10), m, Pid::new(1), al.request, seq == 1)
        };
        // Reach the threshold: 7 events for the parked shard, 1 for the
        // live one. The flush delivers shard 1 and retains shard 0's
        // batch — Full, with 7 events left and the threshold no longer
        // reachable from them alone.
        for seq in 1..=7 {
            assert_eq!(p.try_observe(ev(seq, m0)), Backpressure::Accepted);
        }
        assert_eq!(p.try_observe(ev(8, m1)), Backpressure::Full);
        assert!(matches!(rx1.try_recv(), Ok(ShardMsg::Batch(b)) if b.len() == 1));
        assert_eq!(p.pending(), 7);
        // The parked shard drains.
        assert!(matches!(rx0.try_recv(), Ok(ShardMsg::Batch(b)) if b.is_empty()));
        // One new event — far below the threshold of 8. A pressured
        // handle must re-offer anyway and deliver everything.
        assert_eq!(p.try_observe(ev(9, m1)), Backpressure::Accepted);
        assert_eq!(p.pending(), 0, "retained events must not starve below the threshold");
        assert!(matches!(rx0.try_recv(), Ok(ShardMsg::Batch(b)) if b.len() == 7));
        assert!(matches!(rx1.try_recv(), Ok(ShardMsg::Batch(b)) if b.len() == 1 && b[0].seq == 9));
        assert!(!p.pressured, "a fully delivered flush clears the pressure flag");
    }

    /// The ISSUE's literal shape: park a full inbox, drain the shard,
    /// and assert a bare `try_flush` (no new events at all) delivers
    /// the retained batch.
    #[test]
    fn a_bare_try_flush_delivers_retained_events_after_the_shard_drains() {
        let (_, al) = allocator_spec();
        let (mut p, rx) = stalled_producer(None);
        assert_eq!(p.try_observe(event_for(1, al.request)), Backpressure::Accepted);
        assert_eq!(p.try_observe(event_for(2, al.request)), Backpressure::Full);
        assert_eq!(p.pending(), 1);
        assert!(p.pressured);
        // Drain the shard; no new events arrive.
        assert!(matches!(rx.recv(), Ok(ShardMsg::Batch(b)) if b.len() == 1));
        assert_eq!(p.try_flush(), Backpressure::Accepted);
        assert_eq!(p.pending(), 0);
        assert!(matches!(rx.recv(), Ok(ShardMsg::Batch(b)) if b.len() == 1 && b[0].seq == 2));
    }

    #[test]
    fn a_blocking_flush_clears_the_pressure_flag() {
        let (_, al) = allocator_spec();
        let (mut p, rx) = stalled_producer(None);
        let _ = p.try_observe(event_for(1, al.request));
        assert_eq!(p.try_observe(event_for(2, al.request)), Backpressure::Full);
        assert!(p.pressured);
        assert!(matches!(rx.recv(), Ok(ShardMsg::Batch(_))));
        p.flush();
        assert!(!p.pressured);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn try_observe_pressure_still_halves_the_adaptive_batch() {
        // The adaptive policy must see non-blocking pressure exactly
        // like blocking pressure: a refused hand-off halves the batch.
        let (_, al) = allocator_spec();
        let (mut p, rx) = stalled_producer(Some(AdaptiveBatch::new(1, 8)));
        // Clean flushes grow the batch 1 → 2 → 4 while the inbox is
        // drained promptly.
        assert_eq!(p.try_observe(event_for(1, al.request)), Backpressure::Accepted);
        assert!(rx.try_recv().is_ok());
        assert_eq!(p.batch, 2);
        for seq in 2..=3 {
            let _ = p.try_observe(event_for(seq, al.request));
        }
        assert!(rx.try_recv().is_ok());
        assert_eq!(p.batch, 4);
        for seq in 4..=7 {
            let _ = p.try_observe(event_for(seq, al.request));
        }
        assert_eq!(p.batch, 8, "unpressured growth doubles");
        // Fill the inbox, then force a pressured try_flush: halve.
        assert!(rx.try_recv().is_ok());
        for seq in 8..=15 {
            let _ = p.try_observe(event_for(seq, al.request));
        }
        // Inbox holds the seq 8..=15 batch now; the next flush is
        // refused — nobody drains it in this test, so the outcome is
        // deterministic.
        assert_eq!(p.try_observe(event_for(16, al.request)), Backpressure::Accepted);
        assert_eq!(p.try_flush(), Backpressure::Full);
        assert_eq!(p.batch, 4, "pressure halves the batch: {p:?}");
    }

    #[test]
    fn inline_try_observe_checks_synchronously_and_never_pushes_back() {
        let (spec, al) = allocator_spec();
        let backend = InlineBackend::new(DetectorConfig::without_timeouts());
        backend.register_empty(MonitorId::new(0), Arc::clone(&spec), Nanos::ZERO);
        let mut p = backend.producer();
        assert_eq!(p.try_observe(event_for(1, al.release)), Backpressure::Accepted);
        assert!(!backend.drain_violations().is_empty(), "release without request");
    }

    /// Scoped, provider-backed checkpoints must report exactly what the
    /// caller-drained window form reports on the same trace.
    #[test]
    fn scoped_checkpoint_matches_window_checkpoint() {
        let (spec, _) = allocator_spec();
        let events = faulty_events(8);
        let make = |sharded: Option<usize>| -> Box<dyn DetectionBackend> {
            match sharded {
                None => Box::new(InlineBackend::new(DetectorConfig::without_timeouts())),
                Some(shards) => Box::new(ShardedBackend::new(
                    DetectorConfig::without_timeouts(),
                    ServiceConfig::new(shards),
                )),
            }
        };
        for flavor in [None, Some(1), Some(3)] {
            // Reference: the window form over the same trace.
            let reference = make(flavor);
            for id in 0..8 {
                reference.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            }
            let mut p = reference.producer();
            for e in &events {
                p.observe(*e);
            }
            p.flush();
            let mut want = reference.checkpoint_window(Nanos::new(1000), &events, &HashMap::new());
            want.violations.extend(reference.drain_violations());
            reference.shutdown();

            let scoped = make(flavor);
            for id in 0..8 {
                scoped.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            }
            let mut p = scoped.producer();
            for e in &events {
                p.observe(*e);
            }
            p.flush();
            let mut got = scoped.checkpoint(CheckpointScope::All, Nanos::new(1000));
            got.violations.extend(scoped.drain_violations());
            scoped.shutdown();

            let key = |v: &Violation| (v.monitor, v.pid, v.event_seq, v.rule);
            let mut want_v = want.violations;
            let mut got_v = got.violations;
            want_v.sort_by_key(key);
            got_v.sort_by_key(key);
            assert_eq!(got_v, want_v, "flavor {flavor:?}");
            assert_eq!(got.events_checked, want.events_checked, "flavor {flavor:?}");
        }
    }

    #[test]
    fn shard_scopes_partition_the_full_checkpoint() {
        let (spec, _) = allocator_spec();
        let events = faulty_events(10);
        let drive = |backend: &ShardedBackend| {
            for id in 0..10 {
                backend.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            }
            let mut p = backend.producer();
            for e in &events {
                p.observe(*e);
            }
            p.flush();
        };
        let all = ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(4));
        drive(&all);
        let want = all.checkpoint(CheckpointScope::All, Nanos::new(1000));
        let _ = all.drain_violations();

        let by_shard =
            ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(4));
        drive(&by_shard);
        let mut merged = FaultReport::default();
        for shard in 0..4 {
            merged.merge(by_shard.checkpoint(CheckpointScope::Shard(shard), Nanos::new(1000)));
        }
        merged.sort_canonical();
        let _ = by_shard.drain_violations();
        assert_eq!(merged.violations, want.violations);
        assert_eq!(merged.events_checked, want.events_checked);
        // Out-of-range shard scope is an empty no-op.
        assert!(by_shard.checkpoint(CheckpointScope::Shard(9), Nanos::new(2000)).is_clean());
        all.shutdown();
        by_shard.shutdown();
    }

    #[test]
    fn monitor_scope_checks_one_monitor_only() {
        let (spec, al) = allocator_spec();
        let backend =
            ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(2));
        for id in 0..4 {
            backend.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
        }
        // A bare exit on monitor 2 (flagged by Algorithm-1 replay) and
        // one on monitor 3.
        let mut p = backend.producer();
        for id in [2u32, 3] {
            p.observe(Event::signal_exit(
                u64::from(id),
                Nanos::new(10),
                MonitorId::new(id),
                Pid::new(1),
                al.request,
                None,
                false,
            ));
        }
        p.flush();
        let _ = backend.drain_violations();
        let report =
            backend.checkpoint(CheckpointScope::Monitor(MonitorId::new(2)), Nanos::new(100));
        assert_eq!(report.events_checked, 1, "{report}");
        assert!(report.violations.iter().all(|v| v.monitor == MonitorId::new(2)), "{report}");
        assert!(!report.is_clean(), "exit without enter must be flagged");
        // Monitor 3's pending window is untouched: a later full scoped
        // checkpoint still finds it.
        let rest = backend.checkpoint(CheckpointScope::All, Nanos::new(200));
        assert!(rest.violations.iter().any(|v| v.monitor == MonitorId::new(3)), "{rest}");
        backend.shutdown();
    }

    #[test]
    fn provider_snapshots_feed_scoped_comparisons() {
        // A tampered observation (a phantom process running inside the
        // monitor) must be caught by the scoped checkpoint through the
        // provider, exactly like the window form catches it through
        // the snapshot map.
        let (spec, al) = allocator_spec();
        let m = MonitorId::new(0);
        let backend =
            ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(2));
        backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        let mut p = backend.producer();
        // One clean request/release cycle: the true final state has
        // nobody running.
        p.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
        p.observe(Event::signal_exit(2, Nanos::new(20), m, Pid::new(1), al.request, None, false));
        p.observe(Event::enter(3, Nanos::new(30), m, Pid::new(1), al.release, true));
        p.observe(Event::signal_exit(4, Nanos::new(40), m, Pid::new(1), al.release, None, false));
        p.flush();
        let table = Arc::new(SnapshotTable::default());
        let mut tampered = MonitorState::with_resources(0, 1);
        tampered.running.push(crate::ids::PidProc::new(Pid::new(9), al.request));
        table.publish(m, tampered);
        table.expect_events(m, 4);
        backend.set_snapshot_provider(Arc::clone(&table) as Arc<dyn SnapshotProvider>);
        let report = backend.checkpoint(CheckpointScope::All, Nanos::new(100));
        assert!(
            report.violates_any(&[RuleId::St1EntrySnapshot]),
            "phantom running process must be flagged: {report}"
        );
        let _ = backend.drain_violations();
        backend.shutdown();
    }

    #[test]
    fn consistency_gate_defers_comparison_until_replay_catches_up() {
        let (spec, al) = allocator_spec();
        let m = MonitorId::new(0);
        let backend = InlineBackend::new(DetectorConfig::without_timeouts());
        backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        let table = Arc::new(SnapshotTable::default());
        // The observation says "pid 1 is inside, mid-request" and was
        // taken after 1 recorded event — which has not been ingested
        // yet. Compared against the (still empty) replayed lists it
        // would be a mismatch; the gate must hold it back.
        let mut observed = MonitorState::with_resources(0, 0);
        observed.running.push(crate::ids::PidProc::new(Pid::new(1), al.request));
        table.publish(m, observed);
        table.expect_events(m, 1);
        backend.set_snapshot_provider(Arc::clone(&table) as Arc<dyn SnapshotProvider>);
        // Gate closed: 0 events replayed != 1 expected — no comparison,
        // no fabricated mismatch.
        let early = backend.checkpoint(CheckpointScope::All, Nanos::new(50));
        assert!(early.is_clean(), "gated-out comparison must not run: {early}");
        // Ingest the event the observation covers; now the gate opens
        // and the (consistent) comparison runs clean.
        let mut p = backend.producer();
        p.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
        p.flush();
        let _ = backend.drain_violations();
        let late = backend.checkpoint(CheckpointScope::All, Nanos::new(100));
        assert_eq!(late.events_checked, 1);
        assert!(late.is_clean(), "{late}");
    }

    #[test]
    fn lookahead_sees_flushed_history() {
        let (spec, al) = allocator_spec();
        for backend in backends() {
            let m = MonitorId::new(5);
            backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
            assert_eq!(
                backend.call_would_violate(m, Pid::new(1), al.release),
                Some(RuleId::St8ReleaseWithoutRequest),
                "{}",
                backend.label()
            );
            let mut p = backend.producer();
            p.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
            p.flush();
            assert_eq!(backend.call_would_violate(m, Pid::new(1), al.release), None);
        }
    }
}
