//! [`AsyncBackend`]: detection over a future-driven delivery layer,
//! with a per-monitor **instrumentation mode** and an adaptive
//! controller that tightens monitors toward [`Mode::Sync`] near
//! violations.
//!
//! The paper's instrumentation is fully synchronous: every monitor
//! operation blocks until its event has reached the detector, which is
//! what bounds `recording_only_ratio` and collapses ingest under
//! producer fan-in. The detectEr line of work shows the fix — make the
//! sync/async choice a *per-monitor runtime knob* and pay for tight
//! coupling only where a violation looks close. This module is that
//! knob:
//!
//! * Events enqueue on unbounded per-shard queues and are drained by
//!   one future per shard running on a small hand-rolled executor
//!   (`vendor/futures`). The drainers feed the wrapped
//!   [`ShardedBackend`]'s bounded shard channels, yielding
//!   cooperatively when a channel pushes back — so an enqueue **never
//!   blocks the observing thread**, no matter how many producers fan
//!   in.
//! * [`AsyncBackend::observe`] returns an [`Observe`] future that
//!   resolves when the event has reached its shard worker. The three
//!   instrumentation modes are three ways of awaiting it:
//!   [`Mode::Sync`] blocks on the future
//!   ([`futures::executor::block_on`]), [`Mode::Async`] drops it
//!   (fire-and-forget), [`Mode::Hybrid`] waits up to a timeout and
//!   then detaches. Delivery is guaranteed in every mode — the modes
//!   bound the *wait*, never the hand-off.
//! * Every checkpoint first **quiesces** (waits until the queues have
//!   fully drained into the shard channels), so verdicts are exactly
//!   those of a synchronous run over the same stream: asynchrony moves
//!   detection latency, never detection results.
//!
//! # The adaptive mode controller
//!
//! Each monitor carries a [`ModeController`] — a deterministic
//! tighten/relax state machine pinned by unit test:
//!
//! * any **near-violation signal** since the last checkpoint (a denied
//!   call from the [`DetectionBackend::call_would_violate`] lookahead,
//!   a violation drained or reported for the monitor, or the monitor's
//!   shard queue exceeding the configured high-water depth) tightens
//!   the monitor to [`Mode::Sync`] at the next checkpoint;
//! * [`ModePolicy::relax_after`] consecutive *clean* checkpoints relax
//!   it back to the configured base mode.
//!
//! Observing threads read the resulting per-monitor mode through
//! [`DetectionBackend::instrumentation_mode`] (a single atomic load
//! from the monitor's mode cell), so the runtime's record path follows
//! the controller without locks.

use crate::config::{DetectorConfig, Mode};
use crate::detect::backend::{Backpressure, CheckpointScope, ProducerHandle, SnapshotProvider};
use crate::detect::service::{shard_for, ShardMsg};
use crate::detect::{DetectionBackend, ServiceConfig, ServiceStats, ShardedBackend};
use crate::event::Event;
use crate::ids::{MonitorId, Pid, ProcName};
use crate::rule::RuleId;
use crate::spec::MonitorSpec;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::{FaultReport, Violation};
use crossbeam::channel::{Sender, TrySendError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

/// How the adaptive controller moves a monitor between modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModePolicy {
    /// Consecutive clean checkpoints before a tightened monitor
    /// relaxes back to the base mode.
    pub relax_after: u32,
    /// A shard delivery queue deeper than this at checkpoint time
    /// counts as a near-violation signal for every monitor on the
    /// shard (detection is falling behind, so tighten the coupling).
    pub queue_high_water: usize,
}

impl Default for ModePolicy {
    /// Two clean checkpoints to relax; queues past 4096 undelivered
    /// events signal.
    fn default() -> Self {
        ModePolicy { relax_after: 2, queue_high_water: 4096 }
    }
}

/// The deterministic per-monitor tighten/relax state machine.
///
/// Kept free of any backend state so the policy is pinned by plain
/// unit tests: feed checkpoint outcomes in, read the mode out.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::ModeController;
/// use rmon_core::Mode;
///
/// let mut c = ModeController::new(Mode::Async, 2);
/// assert_eq!(c.current(), Mode::Async);
/// assert_eq!(c.on_checkpoint(true), Mode::Sync); // signal: tighten
/// assert_eq!(c.on_checkpoint(false), Mode::Sync); // 1 clean: hold
/// assert_eq!(c.on_checkpoint(false), Mode::Async); // 2 clean: relax
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeController {
    base: Mode,
    relax_after: u32,
    clean: u32,
    current: Mode,
}

impl ModeController {
    /// A controller starting in `base`, relaxing after `relax_after`
    /// clean checkpoints (clamped to at least 1).
    pub fn new(base: Mode, relax_after: u32) -> Self {
        ModeController { base, relax_after: relax_after.max(1), clean: 0, current: base }
    }

    /// The mode the monitor's observers should use right now.
    pub fn current(&self) -> Mode {
        self.current
    }

    /// Feeds one checkpoint outcome in: `signaled` is whether the
    /// monitor showed any near-violation signal since the previous
    /// checkpoint. Returns the (possibly moved) mode.
    pub fn on_checkpoint(&mut self, signaled: bool) -> Mode {
        if signaled {
            self.clean = 0;
            self.current = Mode::Sync;
        } else if self.current == Mode::Sync && self.base != Mode::Sync {
            self.clean += 1;
            if self.clean >= self.relax_after {
                self.current = self.base;
            }
        }
        self.current
    }
}

/// Lock-free mirror of a monitor's current [`Mode`], read by observers
/// on every record. Tag in the top bits, Hybrid timeout in the low 62
/// (timeouts saturate at ~146 years, which is not a real constraint).
#[derive(Debug)]
struct ModeCell(AtomicU64);

const MODE_TAG_SHIFT: u32 = 62;
const MODE_SYNC: u64 = 0;
const MODE_ASYNC: u64 = 1;
const MODE_HYBRID: u64 = 2;
const MODE_VALUE_MASK: u64 = (1 << MODE_TAG_SHIFT) - 1;

impl ModeCell {
    fn new(mode: Mode) -> Self {
        let cell = ModeCell(AtomicU64::new(0));
        cell.store(mode);
        cell
    }

    fn store(&self, mode: Mode) {
        let bits = match mode {
            Mode::Sync => MODE_SYNC << MODE_TAG_SHIFT,
            Mode::Async => MODE_ASYNC << MODE_TAG_SHIFT,
            Mode::Hybrid(t) => (MODE_HYBRID << MODE_TAG_SHIFT) | (t.as_nanos() & MODE_VALUE_MASK),
        };
        self.0.store(bits, Ordering::Release);
    }

    fn load(&self) -> Mode {
        let bits = self.0.load(Ordering::Acquire);
        match bits >> MODE_TAG_SHIFT {
            MODE_SYNC => Mode::Sync,
            MODE_ASYNC => Mode::Async,
            _ => Mode::Hybrid(Nanos::new(bits & MODE_VALUE_MASK)),
        }
    }
}

/// One event's delivery ticket: resolved when the event has been
/// handed to its shard worker's channel. Supports both awaiting
/// flavours — a [`Waker`] slot for the [`Observe`] future and a
/// condvar for the bounded [`Mode::Hybrid`] wait.
#[derive(Debug, Default)]
struct DeliveryState {
    done: Mutex<bool>,
    cv: Condvar,
    waker: Mutex<Option<Waker>>,
}

impl DeliveryState {
    fn mark_done(&self) {
        *self.done.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.cv.notify_all();
        if let Some(waker) = self.waker.lock().unwrap_or_else(|p| p.into_inner()).take() {
            waker.wake();
        }
    }

    fn is_done(&self) -> bool {
        *self.done.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Waits up to `timeout` for delivery; returns whether it
    /// completed in time.
    fn wait_timeout(&self, timeout: Nanos) -> bool {
        let deadline = std::time::Instant::now() + timeout.to_duration();
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        while !*done {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) =
                self.cv.wait_timeout(done, deadline - now).unwrap_or_else(|p| p.into_inner());
            done = guard;
        }
        true
    }
}

/// The future returned by [`AsyncBackend::observe`]: resolves once the
/// event has reached its shard worker. The event was enqueued when the
/// future was created — dropping the future detaches from the wait
/// (fire-and-forget), it never cancels delivery.
#[derive(Debug)]
#[must_use = "dropping an Observe detaches from the delivery wait (the event is still delivered)"]
pub struct Observe {
    state: Arc<DeliveryState>,
}

impl Future for Observe {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.state.is_done() {
            return Poll::Ready(());
        }
        *self.state.waker.lock().unwrap_or_else(|p| p.into_inner()) = Some(cx.waker().clone());
        // Re-check after parking the waker: a delivery that raced the
        // registration has already consumed (or will consume) it.
        if self.state.is_done() {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

/// One enqueued event, with a ticket only when someone intends to wait
/// (blocking modes); fire-and-forget enqueues skip the allocation.
#[derive(Debug)]
struct QueueItem {
    event: Event,
    ticket: Option<Arc<DeliveryState>>,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<QueueItem>,
    /// The shard drainer's waker, parked while the queue is empty.
    waker: Option<Waker>,
}

/// An unbounded per-shard delivery queue feeding one drainer future.
#[derive(Debug, Default)]
struct ShardQueue {
    state: Mutex<QueueState>,
}

impl ShardQueue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues one item and returns the drainer waker to fire (after
    /// the lock is released).
    fn push(&self, item: QueueItem) -> Option<Waker> {
        let mut st = self.lock();
        st.items.push_back(item);
        st.waker.take()
    }

    fn len(&self) -> usize {
        self.lock().items.len()
    }
}

/// Outstanding-delivery accounting: producers bump on enqueue,
/// drainers settle on hand-off, barriers wait for zero.
#[derive(Debug, Default)]
struct QuiesceCounter {
    pending: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl QuiesceCounter {
    fn add(&self, n: u64) {
        self.pending.fetch_add(n, Ordering::AcqRel);
    }

    fn settle(&self, n: u64) {
        if self.pending.fetch_sub(n, Ordering::AcqRel) == n {
            // Last outstanding delivery: take the lock so a waiter
            // between its check and its wait cannot miss the signal.
            let _guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            self.cv.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        while self.pending.load(Ordering::Acquire) != 0 {
            guard = self.cv.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn outstanding(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }
}

/// State shared by the backend, its producers and the drainer tasks.
#[derive(Debug)]
struct AsyncShared {
    queues: Vec<Arc<ShardQueue>>,
    quiesce: QuiesceCounter,
    open: AtomicBool,
    /// Per-monitor mode cells, read on the observe path.
    modes: Mutex<HashMap<MonitorId, Arc<ModeCell>>>,
    /// Monitors that showed a near-violation signal since the last
    /// checkpoint (denied calls, drained violations).
    signals: Mutex<HashSet<MonitorId>>,
    base: Mode,
}

impl AsyncShared {
    fn mode_cell(&self, monitor: MonitorId) -> Option<Arc<ModeCell>> {
        self.modes.lock().unwrap_or_else(|p| p.into_inner()).get(&monitor).cloned()
    }

    fn signal(&self, monitor: MonitorId) {
        self.signals.lock().unwrap_or_else(|p| p.into_inner()).insert(monitor);
    }

    /// Enqueues one event for delivery, returning a ticket when
    /// `wait` — the caller intends to await the hand-off.
    fn enqueue(&self, event: Event, wait: bool) -> Option<Arc<DeliveryState>> {
        if !self.open.load(Ordering::Acquire) {
            // Post-shutdown observes are dropped, like every backend's.
            return None;
        }
        let shard = shard_for(event.monitor, self.queues.len());
        let ticket = wait.then(|| Arc::new(DeliveryState::default()));
        self.quiesce.add(1);
        let waker = self.queues[shard].push(QueueItem { event, ticket: ticket.clone() });
        if let Some(waker) = waker {
            waker.wake();
        }
        ticket
    }
}

/// The per-shard drainer: moves queued events into the wrapped
/// backend's bounded shard channel, batching opportunistically and
/// yielding back to the executor whenever the channel pushes back.
#[derive(Debug)]
struct Drainer {
    queue: Arc<ShardQueue>,
    sender: Sender<ShardMsg>,
    shared: Arc<AsyncShared>,
    batch: usize,
    /// Items taken from the queue whose channel send was refused; they
    /// are re-offered before anything newer (per-shard FIFO holds).
    carry: Vec<QueueItem>,
}

impl Future for Drainer {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        loop {
            if this.carry.is_empty() {
                let mut st = this.queue.lock();
                if st.items.is_empty() {
                    if !this.shared.open.load(Ordering::Acquire) {
                        return Poll::Ready(());
                    }
                    st.waker = Some(cx.waker().clone());
                    return Poll::Pending;
                }
                let take = st.items.len().min(this.batch);
                this.carry.extend(st.items.drain(..take));
            }
            let batch: Vec<Event> = this.carry.iter().map(|i| i.event).collect();
            match this.sender.try_send(ShardMsg::Batch(batch)) {
                Ok(()) => {
                    // Settle the quiesce counter BEFORE resolving any
                    // ticket: a waiter woken by its ticket must observe
                    // `undelivered()` already decremented.
                    let n = this.carry.len() as u64;
                    this.shared.quiesce.settle(n);
                    for item in this.carry.drain(..) {
                        if let Some(ticket) = item.ticket {
                            ticket.mark_done();
                        }
                    }
                }
                Err(TrySendError::Full(_)) => {
                    // The shard worker is behind: yield so sibling
                    // drainers sharing this executor worker make
                    // progress, and come straight back.
                    std::thread::yield_now();
                    cx.waker().wake_by_ref();
                    return Poll::Pending;
                }
                Err(TrySendError::Disconnected(_)) => {
                    // Worker gone (shutdown): settle and drop, exactly
                    // like post-shutdown observes. Same settle-first
                    // ordering as the delivery path above.
                    let n = this.carry.len() as u64;
                    this.shared.quiesce.settle(n);
                    for item in this.carry.drain(..) {
                        if let Some(ticket) = item.ticket {
                            ticket.mark_done();
                        }
                    }
                }
            }
        }
    }
}

/// A [`DetectionBackend`] whose delivery layer is future-driven: an
/// unbounded per-shard queue + executor-run drainers decouple the
/// observing threads from the bounded shard channels, and a
/// per-monitor [`Mode`] decides how long each observer waits on its
/// event's [`Observe`] future. See the [module docs](self).
#[derive(Debug)]
pub struct AsyncBackend {
    inner: ShardedBackend,
    shared: Arc<AsyncShared>,
    /// Keeps the drainer tasks alive; dropped last.
    _pool: futures::executor::ThreadPool,
    policy: ModePolicy,
    /// Per-monitor adaptive state, driven at checkpoints.
    controllers: Mutex<HashMap<MonitorId, ModeController>>,
}

impl AsyncBackend {
    /// Spawns the wrapped sharded workers plus one drainer task per
    /// shard on a small executor pool. `cfg.mode` is the base
    /// instrumentation mode monitors start in and relax back to.
    pub fn new(cfg: DetectorConfig, service: ServiceConfig) -> Self {
        AsyncBackend::with_policy(cfg, service, ModePolicy::default())
    }

    /// [`AsyncBackend::new`] with an explicit adaptive policy.
    pub fn with_policy(cfg: DetectorConfig, service: ServiceConfig, policy: ModePolicy) -> Self {
        let inner = ShardedBackend::new(cfg, service);
        let senders = inner.service().shard_senders();
        let shards = senders.len();
        let shared = Arc::new(AsyncShared {
            queues: (0..shards).map(|_| Arc::new(ShardQueue::default())).collect(),
            quiesce: QuiesceCounter::default(),
            open: AtomicBool::new(true),
            modes: Mutex::new(HashMap::new()),
            signals: Mutex::new(HashSet::new()),
            base: cfg.mode,
        });
        // One executor worker per two shards is plenty: drainers spend
        // their time in short try_send bursts and park while idle.
        let pool = futures::executor::ThreadPool::with_workers(shards.div_ceil(2));
        for (shard, sender) in senders.into_iter().enumerate() {
            pool.spawn_ok(Drainer {
                queue: Arc::clone(&shared.queues[shard]),
                sender,
                shared: Arc::clone(&shared),
                batch: inner.batch().max(1),
                carry: Vec::new(),
            });
        }
        AsyncBackend { inner, shared, _pool: pool, policy, controllers: Mutex::new(HashMap::new()) }
    }

    /// Overrides the per-flush batch size of the wrapped backend's
    /// handles *and* the drainers' opportunistic batching. Only
    /// affects drainers spawned before the call in their take size,
    /// not correctness.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.inner.set_batch(batch);
        self
    }

    /// The adaptive policy in force.
    pub fn policy(&self) -> ModePolicy {
        self.policy
    }

    /// Enqueues `event` for delivery and returns a future resolving
    /// when it has reached its shard worker. The event is on its way
    /// as soon as this method returns; the future only tracks the
    /// hand-off (dropping it detaches, never cancels).
    pub fn observe(&self, event: Event) -> Observe {
        let ticket = self.shared.enqueue(event, true).unwrap_or_else(|| {
            Arc::new(DeliveryState { done: Mutex::new(true), ..Default::default() })
        });
        Observe { state: ticket }
    }

    /// Blocks until every enqueued event has reached its shard worker.
    /// Checkpoints and violation drains call this implicitly; it is
    /// public for tests and operators that want an explicit barrier.
    pub fn quiesce(&self) {
        self.shared.quiesce.wait_zero();
    }

    /// Events enqueued but not yet handed to a shard worker.
    pub fn undelivered(&self) -> u64 {
        self.shared.quiesce.outstanding()
    }

    /// The mode a monitor is currently instrumented at (observers read
    /// the same cell through
    /// [`DetectionBackend::instrumentation_mode`]).
    pub fn mode_of(&self, monitor: MonitorId) -> Mode {
        self.shared.mode_cell(monitor).map(|c| c.load()).unwrap_or(self.shared.base)
    }

    /// Pins a monitor's mode by hand (operator override / tests). The
    /// adaptive controller keeps running and may move it again at the
    /// next checkpoint.
    pub fn set_mode(&self, monitor: MonitorId, mode: Mode) {
        if let Some(cell) = self.shared.mode_cell(monitor) {
            cell.store(mode);
        }
        let mut controllers = self.controllers.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(c) = controllers.get_mut(&monitor) {
            *c = ModeController::new(mode, self.policy.relax_after);
        }
    }

    /// Runs the adaptive controller over one checkpoint outcome:
    /// consume the accumulated signals, add the monitors the report
    /// indicts and the shards whose queues ran deep, then tighten or
    /// relax every in-scope monitor.
    fn adapt(&self, scope: CheckpointScope, report: &FaultReport) {
        let mut signaled: HashSet<MonitorId> =
            std::mem::take(&mut *self.shared.signals.lock().unwrap_or_else(|p| p.into_inner()));
        signaled.extend(report.violations.iter().map(|v| v.monitor));
        signaled.extend(report.predicted.iter().map(|p| p.violation.monitor));
        let deep: Vec<usize> = self
            .shared
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| q.len() > self.policy.queue_high_water)
            .map(|(shard, _)| shard)
            .collect();
        let mut controllers = self.controllers.lock().unwrap_or_else(|p| p.into_inner());
        for (&monitor, controller) in controllers.iter_mut() {
            let in_scope = match scope {
                CheckpointScope::All => true,
                CheckpointScope::Shard(s) => self.inner.shard_of(monitor) == s,
                CheckpointScope::Monitor(m) => monitor == m,
            };
            if !in_scope {
                continue;
            }
            let pressure = deep.contains(&self.inner.shard_of(monitor));
            let mode = controller.on_checkpoint(signaled.contains(&monitor) || pressure);
            if let Some(cell) =
                self.shared.modes.lock().unwrap_or_else(|p| p.into_inner()).get(&monitor)
            {
                cell.store(mode);
            }
        }
    }
}

impl DetectionBackend for AsyncBackend {
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        self.inner.register(monitor, spec, initial, now);
        self.shared
            .modes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(monitor, Arc::new(ModeCell::new(self.shared.base)));
        self.controllers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(monitor, ModeController::new(self.shared.base, self.policy.relax_after));
    }

    fn producer(&self) -> Box<dyn ProducerHandle> {
        Box::new(AsyncProducer { shared: Arc::clone(&self.shared), cells: HashMap::new() })
    }

    fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        let verdict = self.inner.call_would_violate(monitor, pid, proc_name);
        if verdict.is_some() {
            // A denied call is the clearest near-violation signal
            // there is: tighten this monitor at the next checkpoint.
            self.shared.signal(monitor);
        }
        verdict
    }

    fn set_snapshot_provider(&self, provider: Arc<dyn SnapshotProvider>) {
        self.inner.set_snapshot_provider(provider);
    }

    fn checkpoint(&self, scope: CheckpointScope, now: Nanos) -> FaultReport {
        self.quiesce();
        let report = self.inner.checkpoint(scope, now);
        self.adapt(scope, &report);
        report
    }

    fn checkpoint_window(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        self.quiesce();
        let report = self.inner.checkpoint_window(now, events, snapshots);
        self.adapt(CheckpointScope::All, &report);
        report
    }

    fn stats(&self) -> ServiceStats {
        self.quiesce();
        self.inner.stats()
    }

    fn drain_violations(&self) -> Vec<Violation> {
        self.quiesce();
        let violations = self.inner.drain_violations();
        // Real-time verdicts count as near-violation signals for the
        // next checkpoint's tightening pass.
        for v in &violations {
            self.shared.signal(v.monitor);
        }
        violations
    }

    fn shutdown(&self) {
        // Close the intake, let the drainers hand over what is queued,
        // then stop the wrapped workers.
        self.shared.open.store(false, Ordering::Release);
        for queue in &self.shared.queues {
            if let Some(waker) = queue.lock().waker.take() {
                waker.wake();
            }
        }
        self.quiesce();
        self.inner.shutdown();
    }

    fn label(&self) -> &'static str {
        "async"
    }

    fn shard_of(&self, monitor: MonitorId) -> usize {
        self.inner.shard_of(monitor)
    }

    fn instrumentation_mode(&self, monitor: MonitorId) -> Mode {
        self.mode_of(monitor)
    }
}

impl Drop for AsyncBackend {
    fn drop(&mut self) {
        self.shutdown();
        // `pool` drops after this, joining the (now finished) drainer
        // tasks' worker threads.
    }
}

/// The async backend's handle: every enqueue is a short lock on the
/// owning shard's queue — never a blocking channel send — and the
/// per-monitor mode cell decides how long [`ProducerHandle::observe`]
/// then waits on the delivery ticket.
#[derive(Debug)]
struct AsyncProducer {
    shared: Arc<AsyncShared>,
    /// Handle-local mode-cell cache (one map lookup per monitor per
    /// handle lifetime, then atomic loads).
    cells: HashMap<MonitorId, Option<Arc<ModeCell>>>,
}

impl AsyncProducer {
    fn mode(&mut self, monitor: MonitorId) -> Mode {
        let shared = &self.shared;
        self.cells
            .entry(monitor)
            .or_insert_with(|| shared.mode_cell(monitor))
            .as_ref()
            .map(|c| c.load())
            .unwrap_or(shared.base)
    }
}

impl ProducerHandle for AsyncProducer {
    fn observe(&mut self, event: Event) {
        match self.mode(event.monitor) {
            Mode::Sync => {
                if let Some(ticket) = self.shared.enqueue(event, true) {
                    futures::executor::block_on(Observe { state: ticket });
                }
            }
            Mode::Async => {
                let _ = self.shared.enqueue(event, false);
            }
            Mode::Hybrid(timeout) => {
                if let Some(ticket) = self.shared.enqueue(event, true) {
                    // Bounded wait, then detach: the drainer still
                    // delivers, only the caller stops waiting.
                    let _ = ticket.wait_timeout(timeout);
                }
            }
        }
    }

    fn flush(&mut self) {
        self.shared.quiesce.wait_zero();
    }

    fn try_observe(&mut self, event: Event) -> Backpressure {
        // The never-block path: enqueue fire-and-forget. The unbounded
        // queue always accepts, so there is no Full to report.
        let _ = self.shared.enqueue(event, false);
        Backpressure::Accepted
    }

    fn try_flush(&mut self) -> Backpressure {
        if self.shared.quiesce.outstanding() == 0 {
            Backpressure::Accepted
        } else {
            Backpressure::Full
        }
    }

    fn pending(&self) -> usize {
        // Handle-local buffering does not exist; outstanding delivery
        // is backend-global.
        0
    }

    fn is_closed(&self) -> bool {
        !self.shared.open.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AllocatorSpec;

    fn allocator_spec() -> (Arc<MonitorSpec>, AllocatorSpec) {
        let al = MonitorSpec::allocator("res", 1);
        (Arc::new(al.spec.clone()), al)
    }

    fn backend(mode: Mode, shards: usize) -> AsyncBackend {
        let cfg = DetectorConfig::builder().mode(mode).build();
        let cfg = DetectorConfig { mode: cfg.mode, ..DetectorConfig::without_timeouts() };
        AsyncBackend::new(cfg, ServiceConfig::new(shards))
    }

    #[test]
    fn mode_cell_round_trips_every_mode() {
        for mode in
            [Mode::Sync, Mode::Async, Mode::Hybrid(Nanos::ZERO), Mode::Hybrid(Nanos::from_secs(3))]
        {
            let cell = ModeCell::new(mode);
            assert_eq!(cell.load(), mode);
        }
        let cell = ModeCell::new(Mode::Sync);
        cell.store(Mode::Hybrid(Nanos::from_millis(7)));
        assert_eq!(cell.load(), Mode::Hybrid(Nanos::from_millis(7)));
    }

    #[test]
    fn mode_controller_policy_is_pinned() {
        // The exact tighten/relax schedule the adaptive backend runs:
        // any signal snaps to Sync immediately; relax_after consecutive
        // clean checkpoints restore the base mode; a signal mid-count
        // resets the count.
        let mut c = ModeController::new(Mode::Async, 2);
        assert_eq!(c.current(), Mode::Async, "starts at base");
        assert_eq!(c.on_checkpoint(false), Mode::Async, "clean checkpoints keep base");
        assert_eq!(c.on_checkpoint(true), Mode::Sync, "signal tightens immediately");
        assert_eq!(c.on_checkpoint(false), Mode::Sync, "one clean: still tight");
        assert_eq!(c.on_checkpoint(true), Mode::Sync, "signal resets the clean count");
        assert_eq!(c.on_checkpoint(false), Mode::Sync);
        assert_eq!(c.on_checkpoint(false), Mode::Async, "two consecutive clean: relax");
        // A Sync-based controller never relaxes anywhere.
        let mut sync = ModeController::new(Mode::Sync, 1);
        assert_eq!(sync.on_checkpoint(true), Mode::Sync);
        for _ in 0..5 {
            assert_eq!(sync.on_checkpoint(false), Mode::Sync);
        }
        // Hybrid base relaxes back to Hybrid, not Async.
        let hybrid = Mode::Hybrid(Nanos::from_millis(1));
        let mut h = ModeController::new(hybrid, 1);
        assert_eq!(h.on_checkpoint(true), Mode::Sync);
        assert_eq!(h.on_checkpoint(false), hybrid);
        // relax_after is clamped to at least 1.
        let mut zero = ModeController::new(Mode::Async, 0);
        assert_eq!(zero.on_checkpoint(true), Mode::Sync);
        assert_eq!(zero.on_checkpoint(false), Mode::Async);
    }

    type VerdictKeys = Vec<(Option<Pid>, Option<u64>, RuleId)>;

    #[test]
    fn every_mode_detects_the_same_violations() {
        let (spec, al) = allocator_spec();
        let mut reference: Option<VerdictKeys> = None;
        for mode in [Mode::Sync, Mode::Async, Mode::Hybrid(Nanos::from_millis(50))] {
            let b = backend(mode, 2);
            let m = MonitorId::new(0);
            b.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
            let mut p = b.producer();
            // Release without request: real-time violations.
            p.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.release, true));
            p.flush();
            let mut got: Vec<_> =
                b.drain_violations().iter().map(|v| (v.pid, v.event_seq, v.rule)).collect();
            got.sort();
            assert!(got.iter().any(|&(_, _, r)| r == RuleId::St8ReleaseWithoutRequest), "{mode:?}");
            match &reference {
                Some(want) => assert_eq!(&got, want, "{mode:?}"),
                None => reference = Some(got),
            }
            b.shutdown();
        }
    }

    #[test]
    fn observe_future_resolves_on_delivery() {
        let (spec, al) = allocator_spec();
        let b = backend(Mode::Async, 1);
        let m = MonitorId::new(0);
        b.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        let fut = b.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
        futures::executor::block_on(fut);
        assert_eq!(b.undelivered(), 0);
        let stats = b.stats();
        assert_eq!(stats.total_events(), 1);
        b.shutdown();
    }

    #[test]
    fn quiesce_makes_async_ingestion_lossless() {
        let (spec, al) = allocator_spec();
        let b = backend(Mode::Async, 4);
        for id in 0..8 {
            b.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
        }
        let mut p = b.producer();
        let total = 10_000u64;
        for seq in 1..=total {
            let m = MonitorId::new((seq % 8) as u32);
            p.observe(Event::enter(seq, Nanos::new(seq * 10), m, Pid::new(1), al.request, false));
        }
        p.flush();
        assert_eq!(b.undelivered(), 0);
        assert_eq!(b.stats().total_events(), total, "no event may be lost in flight");
        b.shutdown();
    }

    #[test]
    fn denied_call_tightens_then_clean_checkpoints_relax() {
        let (spec, al) = allocator_spec();
        let b = backend(Mode::Async, 2);
        let m = MonitorId::new(0);
        b.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        assert_eq!(b.mode_of(m), Mode::Async);

        // The lookahead denies a release-without-request: that is a
        // near-violation signal, so the next checkpoint tightens.
        assert!(b.call_would_violate(m, Pid::new(1), al.release).is_some());
        let _ = b.checkpoint(CheckpointScope::All, Nanos::new(100));
        assert_eq!(b.mode_of(m), Mode::Sync, "denied call must tighten to Sync");

        // relax_after (default 2) clean checkpoints relax it back.
        let _ = b.checkpoint(CheckpointScope::All, Nanos::new(200));
        assert_eq!(b.mode_of(m), Mode::Sync, "one clean checkpoint holds Sync");
        let _ = b.checkpoint(CheckpointScope::All, Nanos::new(300));
        assert_eq!(b.mode_of(m), Mode::Async, "second clean checkpoint relaxes");
        b.shutdown();
    }

    #[test]
    fn drained_violation_tightens_only_the_faulty_monitor() {
        let (spec, al) = allocator_spec();
        let b = backend(Mode::Async, 2);
        let faulty = MonitorId::new(0);
        let clean = MonitorId::new(1);
        b.register_empty(faulty, Arc::clone(&spec), Nanos::ZERO);
        b.register_empty(clean, Arc::clone(&spec), Nanos::ZERO);
        let mut p = b.producer();
        p.observe(Event::enter(1, Nanos::new(10), faulty, Pid::new(1), al.release, true));
        p.observe(Event::enter(2, Nanos::new(20), clean, Pid::new(2), al.request, true));
        p.flush();
        assert!(!b.drain_violations().is_empty());
        let _ = b.checkpoint(CheckpointScope::All, Nanos::new(100));
        assert_eq!(b.mode_of(faulty), Mode::Sync, "the faulty monitor tightens");
        assert_eq!(b.mode_of(clean), Mode::Async, "the clean monitor stays async");
        b.shutdown();
    }

    #[test]
    fn set_mode_overrides_and_instrumentation_mode_reflects_it() {
        let (spec, _) = allocator_spec();
        let b = backend(Mode::Async, 1);
        let m = MonitorId::new(0);
        b.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        let hybrid = Mode::Hybrid(Nanos::from_millis(2));
        b.set_mode(m, hybrid);
        assert_eq!(b.instrumentation_mode(m), hybrid);
        // Unregistered monitors answer the base mode.
        assert_eq!(b.instrumentation_mode(MonitorId::new(9)), Mode::Async);
        b.shutdown();
    }

    #[test]
    fn shutdown_delivers_queued_events_then_drops_later_ones() {
        let (spec, al) = allocator_spec();
        let b = backend(Mode::Async, 2);
        let m = MonitorId::new(0);
        b.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        let mut p = b.producer();
        p.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
        b.shutdown();
        assert!(p.is_closed());
        p.observe(Event::enter(2, Nanos::new(20), m, Pid::new(1), al.request, false));
        assert_eq!(b.undelivered(), 0, "post-shutdown observes are dropped, not queued");
    }

    #[test]
    fn hybrid_timeout_detaches_but_still_delivers() {
        let (spec, al) = allocator_spec();
        // Hybrid with a zero timeout: every wait detaches immediately —
        // the degenerate case closest to Async — yet delivery and
        // detection remain complete.
        let b = backend(Mode::Hybrid(Nanos::ZERO), 1);
        let m = MonitorId::new(0);
        b.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        let mut p = b.producer();
        for seq in 1..=100 {
            p.observe(Event::enter(seq, Nanos::new(seq * 10), m, Pid::new(1), al.request, false));
        }
        p.flush();
        assert_eq!(b.stats().total_events(), 100);
        b.shutdown();
    }
}
