//! The per-shard checkpoint scheduler: [`ScheduledBackend`] layers a
//! ticker thread over the sharded service so timer checks run
//! *per shard, periodically, without a global barrier*.
//!
//! The paper's prototype invokes one checking routine every `T` with
//! all processes suspended. The sharded service already moved the
//! checking work off the monitored threads, but checkpoints were still
//! fan-out-from-one-caller: somebody had to call
//! [`ShardedDetector::checkpoint`] and block on every shard's reply.
//! `ScheduledBackend` adds the missing scheduling half:
//!
//! * a **ticker thread** wakes every [`SchedulerConfig::interval`] and
//!   visits exactly one shard, round-robin — a full sweep takes
//!   `shards × interval`, and at no point do two shards pause
//!   together;
//! * each visit runs a **shard-local** checkpoint. With a registered
//!   [`SnapshotProvider`] the visit is
//!   the full §3.3.2 check: the shard replays its pending real-time
//!   window through Algorithms 1–2, observes each of its monitors
//!   through the provider (consistency-gated — see the provider's
//!   contract) and compares, and checks the timers (non-termination
//!   `Tmax`, starvation `Tio`, hold-limit `Tlimit`). Without a
//!   provider the visit degrades to the timer-only sweep: snapshots
//!   need a state source, which only the embedding runtime has. Either
//!   way the sweeps buy **detection latency**: a process stuck past a
//!   timer bound — or, with a provider, a monitor whose observed state
//!   disagrees with its replayed lists — is flagged after at most one
//!   sweep, instead of waiting for the next caller-driven checkpoint;
//! * violations found by the sweeps surface through the ordinary
//!   [`DetectionBackend::drain_violations`], merged with the ones the
//!   shard workers found in real time.
//!
//! The scheduler needs a notion of *now* that agrees with the event
//! timestamps it is judging. By default that is nanoseconds since the
//! backend was created; an embedding runtime whose recorder has its own
//! epoch injects its clock via [`ScheduledBackend::with_clock`].

use crate::config::DetectorConfig;
use crate::detect::backend::{
    gather_snapshots, provider_of, CheckpointScope, DetectionBackend, ProducerHandle,
    ShardedBackend, SnapshotProvider,
};
use crate::detect::service::shard_for;
use crate::detect::{ServiceConfig, ServiceStats, ShardedDetector};
use crate::event::Event;
use crate::ids::{MonitorId, Pid, ProcName};
use crate::rule::RuleId;
use crate::spec::MonitorSpec;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::{FaultReport, Violation};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A shared monotonic time source (nanoseconds on the event clock).
pub type ClockFn = Arc<dyn Fn() -> Nanos + Send + Sync>;

/// Configuration of the per-shard checkpoint scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Wall-clock pause between shard visits. Each tick checkpoints
    /// one shard (round-robin), so every shard is swept once per
    /// `shards × interval`.
    pub interval: Duration,
}

impl SchedulerConfig {
    /// A scheduler visiting one shard every `interval`.
    pub fn new(interval: Duration) -> Self {
        SchedulerConfig { interval: interval.max(Duration::from_micros(1)) }
    }
}

impl Default for SchedulerConfig {
    /// 5 ms between shard visits — frequent enough that the default
    /// detector timeouts (tens of milliseconds and up) are observed
    /// promptly, cheap enough to be unmeasurable next to the checking
    /// work itself.
    fn default() -> Self {
        SchedulerConfig::new(Duration::from_millis(5))
    }
}

/// [`ShardedBackend`] plus a per-shard checkpoint scheduler (see the
/// [module docs](self)).
///
/// Everything ingestion-side is inherited: producer handles are the
/// same per-thread buffered handles, `checkpoint` is the same full
/// fan-out. The addition is the background ticker sweeping the shards
/// for timer violations.
pub struct ScheduledBackend {
    sharded: ShardedBackend,
    extra: Arc<Mutex<Vec<Violation>>>,
    ticks: Arc<AtomicU64>,
    stop: Sender<()>,
    ticker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ScheduledBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduledBackend")
            .field("sharded", &self.sharded)
            .field("ticks", &self.ticks.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ScheduledBackend {
    /// Spawns the shard workers and the ticker thread, timing sweeps on
    /// an internal clock that starts now.
    pub fn new(cfg: DetectorConfig, service: ServiceConfig, scheduler: SchedulerConfig) -> Self {
        let origin = Instant::now();
        let clock: ClockFn =
            Arc::new(move || Nanos::new(origin.elapsed().as_nanos().min(u64::MAX as u128) as u64));
        Self::with_clock(cfg, service, scheduler, clock)
    }

    /// Like [`Self::new`], but sweeps are timestamped by `clock` — use
    /// this when event times come from an epoch the backend did not
    /// create (e.g. a runtime recorder), so timer ages are computed on
    /// the same axis the events were stamped on.
    pub fn with_clock(
        cfg: DetectorConfig,
        service: ServiceConfig,
        scheduler: SchedulerConfig,
        clock: ClockFn,
    ) -> Self {
        let sharded = ShardedBackend::new(cfg, service);
        let senders = sharded.service().shard_senders();
        let directory = sharded.service().directory();
        let provider_slot = sharded.provider_slot();
        let extra = Arc::new(Mutex::new(Vec::new()));
        let ticks = Arc::new(AtomicU64::new(0));
        let (stop, stop_rx) = bounded::<()>(1);
        let extra_w = Arc::clone(&extra);
        let ticks_w = Arc::clone(&ticks);
        let interval = scheduler.interval;
        let ticker = thread::Builder::new()
            .name("rmon-sched".into())
            .spawn(move || {
                let shards = senders.len();
                let mut cursor = 0usize;
                // Per-shard dedup: a timer or snapshot-mismatch
                // violation persists across sweeps (the engine
                // re-reports it while the condition holds), so only the
                // *edge* — a violation absent from the shard's previous
                // sweep — is recorded. A fault that clears and recurs
                // is reported again; a fault that persists costs one
                // entry, not one per tick. One-shot replay violations
                // carry distinct event seqs and are never suppressed.
                type SweepKey = (MonitorId, RuleId, Option<Pid>, Option<u64>);
                let mut last: Vec<HashSet<SweepKey>> = vec![HashSet::new(); shards.max(1)];
                let key = |v: &Violation| (v.monitor, v.rule, v.pid, v.event_seq);
                // recv_timeout doubles as the sleep and the stop signal:
                // a message (or disconnection) ends the loop.
                while let Err(RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                    let now = clock();
                    // With a registered snapshot provider the visit is
                    // a real per-shard Algorithm-1/2 sweep; without one
                    // it stays the timer-only shard-local checkpoint.
                    let provider: Option<Arc<dyn SnapshotProvider>> = provider_of(&provider_slot);
                    let report = match provider {
                        Some(provider) => {
                            let monitors: Vec<MonitorId> = directory
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner())
                                .iter()
                                .copied()
                                .filter(|&m| shard_for(m, shards) == cursor)
                                .collect();
                            let (snapshots, gates) =
                                gather_snapshots(Some(provider.as_ref()), &monitors, now);
                            ShardedDetector::checkpoint_on(
                                &senders, cursor, now, snapshots, gates, None, false,
                            )
                        }
                        None => ShardedDetector::checkpoint_on(
                            &senders,
                            cursor,
                            now,
                            HashMap::new(),
                            HashMap::new(),
                            None,
                            true,
                        ),
                    };
                    let seen: HashSet<_> = report.violations.iter().map(key).collect();
                    let fresh: Vec<Violation> = report
                        .violations
                        .into_iter()
                        .filter(|v| !last[cursor].contains(&key(v)))
                        .collect();
                    last[cursor] = seen;
                    if !fresh.is_empty() {
                        extra_w
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .extend(fresh);
                    }
                    ticks_w.fetch_add(1, Ordering::Relaxed);
                    cursor = (cursor + 1) % shards.max(1);
                }
            })
            .expect("spawn scheduler ticker");
        ScheduledBackend { sharded, extra, ticks, stop, ticker: Mutex::new(Some(ticker)) }
    }

    /// Overrides the producer-handle ingest batch size (see
    /// [`ShardedBackend::with_batch`]).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.sharded.set_batch(batch);
        self
    }

    /// Makes producer handles size their batches adaptively between
    /// `min` and `max` based on channel pressure (see
    /// [`crate::detect::AdaptiveBatch`]).
    pub fn with_adaptive_batch(mut self, min: usize, max: usize) -> Self {
        self.sharded.set_adaptive_batch(min, max);
        self
    }

    /// The wrapped sharded backend.
    pub fn sharded(&self) -> &ShardedBackend {
        &self.sharded
    }

    /// Completed scheduler ticks (shard visits) so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    fn stop_ticker(&self) {
        let handle = self.ticker.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).take();
        if let Some(handle) = handle {
            let _ = self.stop.send(());
            let _ = handle.join();
        }
    }
}

impl DetectionBackend for ScheduledBackend {
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        self.sharded.register(monitor, spec, initial, now);
    }

    fn producer(&self) -> Box<dyn ProducerHandle> {
        self.sharded.producer()
    }

    fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        self.sharded.call_would_violate(monitor, pid, proc_name)
    }

    fn set_snapshot_provider(&self, provider: Arc<dyn SnapshotProvider>) {
        // The slot is shared with the ticker: from the next tick on,
        // the background sweeps are full snapshot sweeps.
        self.sharded.set_snapshot_provider(provider);
    }

    fn checkpoint(&self, scope: CheckpointScope, now: Nanos) -> FaultReport {
        self.sharded.checkpoint(scope, now)
    }

    fn checkpoint_window(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        self.sharded.checkpoint_window(now, events, snapshots)
    }

    fn stats(&self) -> ServiceStats {
        self.sharded.stats()
    }

    fn drain_violations(&self) -> Vec<Violation> {
        let mut vs = self.sharded.drain_violations();
        let mut extra = self.extra.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        vs.append(&mut extra);
        vs
    }

    fn shutdown(&self) {
        self.stop_ticker();
        self.sharded.shutdown();
    }

    fn label(&self) -> &'static str {
        "scheduled"
    }

    fn shard_of(&self, monitor: MonitorId) -> usize {
        self.sharded.shard_of(monitor)
    }
}

impl Drop for ScheduledBackend {
    fn drop(&mut self) {
        self.stop_ticker();
        // `sharded` shuts its workers down in its own drop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;

    fn allocator_spec() -> (Arc<MonitorSpec>, crate::spec::AllocatorSpec) {
        let al = MonitorSpec::allocator("res", 1);
        (Arc::new(al.spec.clone()), al)
    }

    #[test]
    fn ticker_sweeps_and_shuts_down_cleanly() {
        let backend = ScheduledBackend::new(
            DetectorConfig::without_timeouts(),
            ServiceConfig::new(2),
            SchedulerConfig::new(Duration::from_millis(1)),
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while backend.ticks() < 4 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        assert!(backend.ticks() >= 4, "ticker must make progress");
        backend.shutdown();
        let after = backend.ticks();
        thread::sleep(Duration::from_millis(5));
        assert_eq!(backend.ticks(), after, "no ticks after shutdown");
    }

    #[test]
    fn scheduled_sweep_detects_hold_timeout_without_a_caller_checkpoint() {
        // Tlimit = 1 ms on the event clock; a right acquired at t=0 and
        // never released must be flagged by the background sweeps alone.
        let cfg = DetectorConfig::builder()
            .t_max(Nanos::from_secs(100))
            .t_io(Nanos::from_secs(100))
            .t_limit(Nanos::from_millis(1))
            .build();
        let backend = ScheduledBackend::new(
            cfg,
            ServiceConfig::new(2),
            SchedulerConfig::new(Duration::from_millis(1)),
        );
        let (spec, al) = allocator_spec();
        let m = MonitorId::new(0);
        backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        let mut p = backend.producer();
        p.observe(Event::enter(1, Nanos::new(1), m, Pid::new(1), al.request, true));
        p.flush();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut found = Vec::new();
        while found.is_empty() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
            found = backend.drain_violations();
        }
        assert!(
            found.iter().any(|v| v.rule == RuleId::St8HoldTimeout),
            "sweeps must flag the expired hold: {found:?}"
        );
        // The fault persists, but the sweeps dedup against the previous
        // visit: give the ticker many more sweeps and verify it does
        // not flood the collector with one report per tick.
        let ticks_before = backend.ticks();
        let deadline = Instant::now() + Duration::from_secs(5);
        while backend.ticks() < ticks_before + 20 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        let rereported = backend.drain_violations();
        assert!(
            rereported.iter().filter(|v| v.rule == RuleId::St8HoldTimeout).count() <= 1,
            "persisting fault must not be re-reported per tick: {} entries",
            rereported.len()
        );
        backend.shutdown();
    }

    #[test]
    fn provider_upgrades_sweeps_to_snapshot_checks() {
        use crate::detect::backend::{SnapshotProvider, SnapshotTable};
        use crate::ids::PidProc;
        use crate::state::MonitorState;

        // No timers could fire here: whatever the sweeps find must come
        // from the Algorithm-1 snapshot comparison.
        let backend = ScheduledBackend::new(
            DetectorConfig::without_timeouts(),
            ServiceConfig::new(2),
            SchedulerConfig::new(Duration::from_millis(1)),
        );
        let (spec, al) = allocator_spec();
        let m = MonitorId::new(0);
        backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        // Observed state disagrees with the replayed truth: a phantom
        // process is inside the monitor. Gated on the 2 events below.
        let mut tampered = MonitorState::with_resources(0, 1);
        tampered.running.push(PidProc::new(Pid::new(9), al.request));
        let table = Arc::new(SnapshotTable::default());
        table.publish(m, tampered);
        table.expect_events(m, 2);
        backend.set_snapshot_provider(Arc::clone(&table) as Arc<dyn SnapshotProvider>);
        let mut p = backend.producer();
        p.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
        p.observe(Event::signal_exit(2, Nanos::new(20), m, Pid::new(1), al.request, None, false));
        p.flush();
        // The background sweeps alone — no caller checkpoint — must
        // flag the mismatch once the shard's replay catches up.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut found = Vec::new();
        while found.is_empty() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
            found = backend.drain_violations();
        }
        assert!(
            found.iter().any(|v| v.rule == RuleId::St1EntrySnapshot),
            "sweeps must compare against the provider's snapshot: {found:?}"
        );
        backend.shutdown();
    }

    #[test]
    fn clean_traffic_stays_clean_under_sweeps() {
        let backend = ScheduledBackend::new(
            DetectorConfig::without_timeouts(),
            ServiceConfig::new(2),
            SchedulerConfig::new(Duration::from_millis(1)),
        );
        let (spec, al) = allocator_spec();
        let m = MonitorId::new(0);
        backend.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        let mut p = backend.producer();
        let mut seq = 0;
        for _ in 0..50 {
            for proc_name in [al.request, al.release] {
                seq += 1;
                p.observe(Event::enter(seq, Nanos::new(seq), m, Pid::new(1), proc_name, true));
                seq += 1;
                p.observe(Event::signal_exit(
                    seq,
                    Nanos::new(seq),
                    m,
                    Pid::new(1),
                    proc_name,
                    None,
                    false,
                ));
            }
        }
        p.flush();
        thread::sleep(Duration::from_millis(10));
        let report = backend.checkpoint_window(Nanos::new(seq + 1), &[], &HashMap::new());
        assert!(report.is_clean(), "{report}");
        assert!(backend.drain_violations().is_empty());
        backend.shutdown();
    }
}
