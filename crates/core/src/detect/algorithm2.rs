//! Algorithm-2: Consistency-Of-Resource-States Checking (paper §3.3.2).
//!
//! For communication-coordinator monitors only: replays the window's
//! events over the Resource-No counter and the `r`/`s` success counters,
//! checking the four ST-7 sub-rules:
//!
//! * ST-7a: `0 ≤ r ≤ s ≤ r + Rmax`,
//! * ST-7b: observed `R#` at the checkpoint equals
//!   `R#(p) + r − s`,
//! * ST-7c: a sender is delayed only when `Resource-No = 0`,
//! * ST-7d: a receiver is delayed only when `Resource-No = Rmax`.

use crate::event::Event;
use crate::ids::MonitorId;
use crate::lists::ResourceState;
use crate::spec::{MonitorClass, MonitorSpec};
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::Violation;

/// Runs Algorithm-2 as a batch over one checking window.
///
/// Returns no violations for monitors that are not communication
/// coordinators (the rule does not apply).
///
/// # Examples
///
/// ```
/// use rmon_core::detect::algorithm2;
/// use rmon_core::{MonitorId, MonitorSpec, MonitorState, Nanos};
///
/// let bb = MonitorSpec::bounded_buffer("buf", 4);
/// let s = MonitorState::with_resources(2, 4);
/// let v = algorithm2::run(MonitorId::new(0), &bb.spec, &s, &[], &s, Nanos::ZERO);
/// assert!(v.is_empty());
/// ```
pub fn run(
    monitor: MonitorId,
    spec: &MonitorSpec,
    prev: &MonitorState,
    events: &[Event],
    current: &MonitorState,
    now: Nanos,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if spec.class != MonitorClass::CommunicationCoordinator {
        return out;
    }
    let rmax = spec.capacity.unwrap_or(0);
    let available = prev.available.unwrap_or(rmax);
    let mut rs = ResourceState::new(monitor, rmax, available);
    for event in events {
        rs.apply(spec, event, &mut out);
    }
    rs.compare_snapshot(current, now, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::ids::{CondId, Pid, ProcName};
    use crate::rule::RuleId;

    const M: MonitorId = MonitorId::new(0);
    const SEND: ProcName = ProcName::new(0);
    const RECV: ProcName = ProcName::new(1);
    const FULL: CondId = CondId::new(0);
    const EMPTY: CondId = CondId::new(1);

    fn spec() -> MonitorSpec {
        MonitorSpec::bounded_buffer("buf", 2).spec
    }

    fn send_cycle(seq: &mut u64, t: &mut u64, pid: u32) -> Vec<Event> {
        let mut ev = Vec::new();
        *seq += 1;
        *t += 10;
        ev.push(Event::enter(*seq, Nanos::new(*t), M, Pid::new(pid), SEND, true));
        *seq += 1;
        *t += 10;
        ev.push(Event::signal_exit(
            *seq,
            Nanos::new(*t),
            M,
            Pid::new(pid),
            SEND,
            Some(EMPTY),
            false,
        ));
        ev
    }

    fn recv_cycle(seq: &mut u64, t: &mut u64, pid: u32) -> Vec<Event> {
        let mut ev = Vec::new();
        *seq += 1;
        *t += 10;
        ev.push(Event::enter(*seq, Nanos::new(*t), M, Pid::new(pid), RECV, true));
        *seq += 1;
        *t += 10;
        ev.push(Event::signal_exit(
            *seq,
            Nanos::new(*t),
            M,
            Pid::new(pid),
            RECV,
            Some(FULL),
            false,
        ));
        ev
    }

    #[test]
    fn balanced_traffic_is_clean() {
        let spec = spec();
        let (mut seq, mut t) = (0, 0);
        let mut events = Vec::new();
        events.extend(send_cycle(&mut seq, &mut t, 1));
        events.extend(recv_cycle(&mut seq, &mut t, 2));
        let prev = MonitorState::with_resources(2, 2);
        let current = MonitorState::with_resources(2, 2);
        let v = run(M, &spec, &prev, &events, &current, Nanos::new(t + 1));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn receive_before_any_send_is_flagged() {
        let spec = spec();
        let (mut seq, mut t) = (0, 0);
        let events = recv_cycle(&mut seq, &mut t, 1);
        let prev = MonitorState::with_resources(2, 2);
        let current = MonitorState::with_resources(2, 3);
        let v = run(M, &spec, &prev, &events, &current, Nanos::new(t + 1));
        assert!(v.iter().any(|v| v.fault == Some(FaultKind::ReceiveExceedsSend)), "{v:?}");
    }

    #[test]
    fn three_sends_into_capacity_two_is_flagged() {
        let spec = spec();
        let (mut seq, mut t) = (0, 0);
        let mut events = Vec::new();
        for p in 1..=3 {
            events.extend(send_cycle(&mut seq, &mut t, p));
        }
        let prev = MonitorState::with_resources(2, 2);
        let current = MonitorState::with_resources(2, 0);
        let v = run(M, &spec, &prev, &events, &current, Nanos::new(t + 1));
        assert!(v.iter().any(|v| v.fault == Some(FaultKind::SendExceedsCapacity)), "{v:?}");
    }

    #[test]
    fn checkpoint_resource_mismatch_is_flagged() {
        let spec = spec();
        let (mut seq, mut t) = (0, 0);
        let events = send_cycle(&mut seq, &mut t, 1);
        let prev = MonitorState::with_resources(2, 2);
        // A correct run would leave one free slot, but the observed
        // snapshot claims two (a lost deposit).
        let current = MonitorState::with_resources(2, 2);
        let v = run(M, &spec, &prev, &events, &current, Nanos::new(t + 1));
        assert!(v.iter().any(|v| v.rule == RuleId::St7CountInvariant), "{v:?}");
    }

    #[test]
    fn non_coordinator_monitors_are_skipped() {
        let spec = MonitorSpec::allocator("a", 1).spec;
        let prev = MonitorState::new(1);
        let current = MonitorState::new(1);
        let events = vec![Event::enter(1, Nanos::new(1), M, Pid::new(1), ProcName::new(0), true)];
        let v = run(M, &spec, &prev, &events, &current, Nanos::new(2));
        assert!(v.is_empty());
    }
}
