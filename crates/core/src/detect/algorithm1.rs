//! Algorithm-1: General Concurrency-Control Checking (paper §3.3.2).
//!
//! Input: monitor state `s_p` at the last checking time, state `s_t` at
//! the current checking time, and the scheduling event sequence `L`
//! generated in between. Step 1 replays `L` over checking lists
//! initialized from `s_p`, reporting every ST-1..4 violation on the way;
//! step 2 compares the replayed lists against `s_t` and checks the
//! `Tmax` / `Tio` timers.

use crate::config::DetectorConfig;
use crate::event::Event;
use crate::ids::MonitorId;
use crate::lists::GeneralLists;
use crate::spec::MonitorSpec;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::Violation;

/// Runs Algorithm-1 as a batch over one checking window.
///
/// `prev` is `s_p` (the observed state at the last checking time `t_p`),
/// `events` is the window `L = l₁…lₙ`, `current` is `s_t`, and `now` is
/// the current checking time `t`.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::algorithm1;
/// use rmon_core::{DetectorConfig, MonitorId, MonitorSpec, MonitorState, Nanos};
///
/// let bb = MonitorSpec::bounded_buffer("buf", 2);
/// let empty = MonitorState::with_resources(2, 2);
/// let violations = algorithm1::run(
///     MonitorId::new(0),
///     &bb.spec,
///     &DetectorConfig::default(),
///     &empty,
///     &[],
///     &empty,
///     Nanos::from_millis(1),
/// );
/// assert!(violations.is_empty());
/// ```
#[allow(clippy::too_many_arguments)]
pub fn run(
    monitor: MonitorId,
    spec: &MonitorSpec,
    cfg: &DetectorConfig,
    prev: &MonitorState,
    events: &[Event],
    current: &MonitorState,
    now: Nanos,
) -> Vec<Violation> {
    let mut out = Vec::new();
    // Step 1: initialize the checking lists from s_p and replay L.
    let mut lists =
        GeneralLists::from_state(monitor, spec.cond_count(), prev, prev_time(events, now));
    for event in events {
        lists.apply(spec, event, &mut out);
    }
    // Step 2: compare against s_t and check the timers.
    lists.compare_snapshot(current, now, &mut out);
    lists.check_timers(cfg, now, &mut out);
    out
}

/// The logical start time of the window: the first event's timestamp,
/// or `now` for an empty window (timers then trivially pass).
fn prev_time(events: &[Event], now: Nanos) -> Nanos {
    events.first().map_or(now, |e| e.time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::ids::{CondId, Pid, PidProc, ProcName};
    use crate::rule::RuleId;

    const M: MonitorId = MonitorId::new(0);

    fn spec() -> MonitorSpec {
        MonitorSpec::bounded_buffer("buf", 2).spec
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig::without_timeouts()
    }

    #[test]
    fn clean_window_produces_no_violations() {
        let spec = spec();
        let prev = MonitorState::new(2);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), ProcName::new(0), true),
            Event::signal_exit(
                2,
                Nanos::new(20),
                M,
                Pid::new(1),
                ProcName::new(0),
                Some(CondId::new(1)),
                false,
            ),
        ];
        let current = MonitorState::new(2);
        let v = run(M, &spec, &cfg(), &prev, &events, &current, Nanos::new(30));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn window_starting_from_nonempty_state_is_consistent() {
        let spec = spec();
        // P1 was inside at the last checkpoint.
        let mut prev = MonitorState::new(2);
        prev.running.push(PidProc::new(Pid::new(1), ProcName::new(0)));
        let events = vec![Event::signal_exit(
            5,
            Nanos::new(10),
            M,
            Pid::new(1),
            ProcName::new(0),
            Some(CondId::new(1)),
            false,
        )];
        let current = MonitorState::new(2);
        let v = run(M, &spec, &cfg(), &prev, &events, &current, Nanos::new(20));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn detects_mutual_exclusion_violation_in_window() {
        let spec = spec();
        let prev = MonitorState::new(2);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), ProcName::new(0), true),
            Event::enter(2, Nanos::new(11), M, Pid::new(2), ProcName::new(1), true),
        ];
        let mut current = MonitorState::new(2);
        current.running.push(PidProc::new(Pid::new(1), ProcName::new(0)));
        current.running.push(PidProc::new(Pid::new(2), ProcName::new(1)));
        let v = run(M, &spec, &cfg(), &prev, &events, &current, Nanos::new(30));
        assert!(v.iter().any(|v| v.rule == RuleId::St3RunningUnique
            && v.fault == Some(FaultKind::EnterMutualExclusion)));
    }

    #[test]
    fn detects_lost_process_via_snapshot_mismatch() {
        let spec = spec();
        let prev = MonitorState::new(2);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), ProcName::new(0), true),
            Event::enter(2, Nanos::new(11), M, Pid::new(2), ProcName::new(1), false),
        ];
        // Observed state: P2 vanished (neither queued nor admitted).
        let mut current = MonitorState::new(2);
        current.running.push(PidProc::new(Pid::new(1), ProcName::new(0)));
        let v = run(M, &spec, &cfg(), &prev, &events, &current, Nanos::new(30));
        assert!(v.iter().any(|v| v.rule == RuleId::St1EntrySnapshot), "{v:?}");
    }

    #[test]
    fn detects_starvation_through_tio() {
        let spec = spec();
        let prev = MonitorState::new(2);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), ProcName::new(0), true),
            Event::enter(2, Nanos::new(11), M, Pid::new(2), ProcName::new(1), false),
        ];
        let mut current = MonitorState::new(2);
        current.running.push(PidProc::new(Pid::new(1), ProcName::new(0)));
        current.entry_queue.push(PidProc::new(Pid::new(2), ProcName::new(1)));
        let tight = DetectorConfig::builder()
            .t_io(Nanos::from_millis(1))
            .t_max(Nanos::from_secs(100))
            .build();
        let v = run(M, &spec, &tight, &prev, &events, &current, Nanos::from_secs(1));
        assert!(v.iter().any(|v| v.rule == RuleId::St6EntryTimeout), "{v:?}");
    }

    #[test]
    fn empty_window_with_equal_states_is_clean() {
        let spec = spec();
        let st = MonitorState::new(2);
        let v = run(M, &spec, &cfg(), &st, &[], &st, Nanos::new(5));
        assert!(v.is_empty());
    }
}
