//! The sharded, batched detection service — the first scaling layer on
//! top of the paper's single-threaded checking routine.
//!
//! The prototype of §4 runs one data-gathering routine and one checking
//! routine. That is faithful but serial: every monitor's events funnel
//! through one [`Detector`] behind one lock. A production deployment
//! watching hundreds of monitors wants the checking work spread across
//! cores, and wants the per-event dispatch cost amortised.
//!
//! [`ShardedDetector`] does both:
//!
//! * **Sharding** — registered monitors are partitioned across `N`
//!   worker shards by a stable hash of their [`MonitorId`]
//!   ([`shard_for`]). Each shard owns a private [`Detector`] on its own
//!   thread, so checking for different monitors proceeds in parallel
//!   with no shared checker state.
//! * **Batching** — events are ingested through
//!   [`ShardedDetector::observe_batch`], which partitions a whole slice
//!   of events per shard and hands each shard *one* message per batch
//!   over a **bounded** channel. The bound gives backpressure: a
//!   producer that outruns the checkers blocks instead of growing an
//!   unbounded queue.
//! * **Collection** — real-time (Algorithm-3) violations flow into a
//!   collector holding per-shard counters; [`ShardedDetector::stats`]
//!   snapshots them as a [`ServiceStats`] and
//!   [`ShardedDetector::drain_violations`] takes the violations found
//!   so far.
//!
//! Per-shard channels are FIFO, so a [`ShardedDetector::checkpoint`]
//! enqueued after a batch is guaranteed to see that batch's effects —
//! the observational behaviour (which violations are reported) is the
//! same as feeding one inline [`Detector`], independent of shard count;
//! only the interleaving across *different* monitors differs, and every
//! report is canonically re-sorted.
//!
//! **Ordering precondition.** That equivalence assumes each *caller's*
//! events (per [`Pid`], per monitor) are ingested in non-decreasing
//! `seq` order. Batches from different producers may interleave
//! freely: the Algorithm-3 order state is keyed by caller, and the
//! engine's watermarks are per-pid, so cross-pid reordering neither
//! loses nor double-reports a check. One thread's events flowing
//! through one [`crate::detect::ProducerHandle`] satisfy the
//! precondition by construction (per-producer channel FIFO). An event
//! at or below its pid's watermark is skipped by the real-time checks
//! (periodic [`ShardedDetector::checkpoint`] replay of Algorithms 1–2
//! is unaffected — the caller passes the full window there).
//!
//! # Examples
//!
//! ```
//! use rmon_core::detect::service::{ServiceConfig, ShardedDetector};
//! use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, Nanos, Pid};
//! use std::collections::HashMap;
//! use std::sync::Arc;
//!
//! let svc = ShardedDetector::new(
//!     DetectorConfig::without_timeouts(),
//!     ServiceConfig::new(4),
//! );
//!
//! // Register 8 allocator monitors; they spread across the 4 shards.
//! let al = MonitorSpec::allocator("res", 1);
//! let spec = Arc::new(al.spec.clone());
//! for i in 0..8 {
//!     svc.register_empty(MonitorId::new(i), Arc::clone(&spec), Nanos::ZERO);
//! }
//!
//! // One batch carrying a duplicate-request fault in monitor 3.
//! let m = MonitorId::new(3);
//! svc.observe_batch(&[
//!     Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true),
//!     Event::enter(2, Nanos::new(20), m, Pid::new(1), al.request, false),
//! ]);
//! svc.flush();
//!
//! let stats = svc.stats();
//! assert_eq!(stats.total_events(), 2);
//! assert!(!svc.drain_violations().is_empty());
//! // Even with no explicit window, the checkpoint replays the events
//! // the shards ingested in real time (their pending windows).
//! let report = svc.checkpoint(Nanos::new(30), &[], &HashMap::new());
//! assert_eq!(report.events_checked, 2);
//! ```

use crate::config::DetectorConfig;
use crate::detect::Detector;
use crate::event::Event;
use crate::ids::{MonitorId, Pid, ProcName};
use crate::rule::RuleId;
use crate::spec::MonitorSpec;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::{FaultReport, Violation};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

/// Stable shard assignment: hashes the raw [`MonitorId`] through a
/// SplitMix64 finalizer and reduces modulo `shards`.
///
/// The function is pure — the same `(monitor, shards)` pair maps to the
/// same shard on every call, every instance, every process — so shard
/// routing never needs a directory lookup.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::service::shard_for;
/// use rmon_core::MonitorId;
///
/// let m = MonitorId::new(42);
/// assert_eq!(shard_for(m, 4), shard_for(m, 4));
/// assert!(shard_for(m, 4) < 4);
/// ```
pub fn shard_for(monitor: MonitorId, shards: usize) -> usize {
    let mut x = (monitor.index() as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards.max(1) as u64) as usize
}

/// Configuration of the sharded service: how many worker shards to
/// spawn and how deep each shard's bounded inbox is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of worker shards (clamped to at least 1).
    pub shards: usize,
    /// Bounded per-shard inbox depth, in messages (batches count as one
    /// message each). When a shard's inbox is full, `observe_batch`
    /// blocks — backpressure instead of unbounded memory growth.
    pub queue_capacity: usize,
}

impl ServiceConfig {
    /// A configuration with `shards` workers and the default inbox
    /// depth (64 messages).
    pub fn new(shards: usize) -> Self {
        ServiceConfig { shards: shards.max(1), queue_capacity: 64 }
    }

    /// Overrides the bounded inbox depth.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new(4)
    }
}

/// Per-shard ingestion counters, snapshotted by
/// [`ShardedDetector::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Monitors registered on this shard.
    pub monitors: u64,
    /// Batches the shard has finished processing.
    pub batches: u64,
    /// Events observed (across all processed batches).
    pub events_observed: u64,
    /// Real-time violations the shard has reported.
    pub violations: u64,
}

/// A point-in-time snapshot of the whole service's counters.
///
/// Produced by [`ShardedDetector::stats`]; batches still queued in a
/// shard inbox are not yet counted (call [`ShardedDetector::flush`]
/// first for a quiescent snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// One entry per shard, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total events observed across all shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events_observed).sum()
    }

    /// Total batches processed across all shards.
    pub fn total_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Total real-time violations reported across all shards.
    pub fn total_violations(&self) -> u64 {
        self.shards.iter().map(|s| s.violations).sum()
    }

    /// Shards that have observed at least one event — a quick load-
    /// balance indicator.
    pub fn active_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.events_observed > 0).count()
    }
}

/// The violation collector shared by all shard workers: per-shard
/// counters plus the accumulated real-time violations.
#[derive(Debug)]
struct Collector {
    state: Mutex<CollectorState>,
}

#[derive(Debug)]
struct CollectorState {
    shards: Vec<ShardStats>,
    violations: Vec<Violation>,
}

impl Collector {
    fn new(shards: usize) -> Self {
        Collector {
            state: Mutex::new(CollectorState {
                shards: vec![ShardStats::default(); shards],
                violations: Vec::new(),
            }),
        }
    }

    /// Poison-tolerant lock: a panicking worker must not wedge the
    /// service handle.
    fn lock(&self) -> MutexGuard<'_, CollectorState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn note_monitor(&self, shard: usize) {
        self.lock().shards[shard].monitors += 1;
    }

    /// Absorbs one processed batch: bumps the shard's counters and
    /// moves any violations out of the worker's scratch buffer.
    fn absorb(&self, shard: usize, events: u64, scratch: &mut Vec<Violation>) {
        let mut state = self.lock();
        let stats = &mut state.shards[shard];
        stats.batches += 1;
        stats.events_observed += events;
        stats.violations += scratch.len() as u64;
        state.violations.append(scratch);
    }
}

/// One checkpoint round-trip through a shard worker: everything the
/// worker's detector needs to run the periodic checking routine, plus
/// the reply channel the merged report travels back on.
///
/// Three shapes share the message:
///
/// * **window** — `events` non-empty: the caller drained a recorded
///   window and split it per shard (the synchronous barrier path);
/// * **scoped** — `events` empty, `timers_only` false: the shard
///   replays its own pending real-time window against the supplied
///   `snapshots`, guarded by the consistency `gates` (the
///   [`crate::detect::DetectionBackend::checkpoint`] /
///   [`crate::detect::SnapshotProvider`] path);
/// * **timer sweep** — `timers_only` true: the shard checks its timers
///   against its shard-local lists and touches nothing else (the
///   scheduler's no-provider fallback).
#[derive(Debug)]
pub(crate) struct CheckpointReq {
    pub(crate) now: Nanos,
    pub(crate) events: Vec<Event>,
    pub(crate) snapshots: HashMap<MonitorId, MonitorState>,
    /// Snapshot consistency gates, per monitor (see
    /// [`crate::detect::Detector::checkpoint_scoped`]).
    pub(crate) gates: HashMap<MonitorId, u64>,
    /// Restrict the checkpoint to one monitor
    /// ([`crate::detect::CheckpointScope::Monitor`]).
    pub(crate) only: Option<MonitorId>,
    /// Check timers only; replay nothing, compare nothing.
    pub(crate) timers_only: bool,
    pub(crate) reply: Sender<FaultReport>,
}

/// Messages on a shard's bounded inbox. Registration, ingestion and
/// checkpointing all travel on the same FIFO channel, which is what
/// makes the service sequentially consistent per monitor without any
/// cross-shard synchronisation.
#[derive(Debug)]
pub(crate) enum ShardMsg {
    Register {
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: MonitorState,
        now: Nanos,
    },
    Batch(Vec<Event>),
    /// A single event — [`ShardedDetector::observe`]'s message shape,
    /// so the convenience path costs no per-event `Vec` allocation.
    One(Event),
    Checkpoint(CheckpointReq),
    WouldViolate {
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        reply: Sender<Option<RuleId>>,
    },
    Flush {
        reply: Sender<()>,
    },
    /// Explicit worker termination: unlike channel disconnection (which
    /// requires every cloned sender — including those held by
    /// outstanding producer handles — to drop first), a `Shutdown`
    /// message ends the worker as soon as its inbox drains to it.
    Shutdown,
}

/// Pending-replay events a shard tolerates across timer-only sweeps
/// before a sweep force-drains them (see the `Checkpoint` arm of
/// [`shard_worker`]). High enough that deterministic tests and any
/// deployment running real checkpoints never trip it; low enough to
/// bound a drain-less shard to a few MiB of retained events.
const PENDING_REPLAY_HIGH_WATER: usize = 1 << 16;

/// One shard worker: owns a private [`Detector`] and drains its inbox
/// until the service handle is dropped.
fn shard_worker(
    shard: usize,
    cfg: DetectorConfig,
    rx: Receiver<ShardMsg>,
    collector: Arc<Collector>,
) {
    let mut det = Detector::new(cfg);
    let mut scratch: Vec<Violation> = Vec::new();
    while let Ok(msg) = rx.recv() {
        if matches!(msg, ShardMsg::Shutdown) {
            // Drain before exit: messages already enqueued behind the
            // shutdown marker — a scoped checkpoint, a lookahead or a
            // flush racing teardown — still get a real answer instead
            // of having their reply sender dropped with the inbox.
            // Only messages in the queue *now* are in-flight; anything
            // sent after the inbox disconnects degrades at the caller
            // (`recv().unwrap_or_default()`).
            while let Ok(msg) = rx.try_recv() {
                handle_shard_msg(shard, &mut det, &mut scratch, &collector, msg);
            }
            break;
        }
        handle_shard_msg(shard, &mut det, &mut scratch, &collector, msg);
    }
}

/// Processes one inbox message against the shard's detector. A nested
/// `Shutdown` (possible during the drain pass) is a no-op — the worker
/// loop owns termination.
fn handle_shard_msg(
    shard: usize,
    det: &mut Detector,
    scratch: &mut Vec<Violation>,
    collector: &Collector,
    msg: ShardMsg,
) {
    match msg {
        ShardMsg::Register { monitor, spec, initial, now } => {
            det.register(monitor, spec, &initial, now);
            collector.note_monitor(shard);
        }
        ShardMsg::Batch(events) => {
            for event in &events {
                det.observe_into(event, scratch);
            }
            collector.absorb(shard, events.len() as u64, scratch);
        }
        ShardMsg::One(event) => {
            det.observe_into(&event, scratch);
            collector.absorb(shard, 1, scratch);
        }
        ShardMsg::Checkpoint(req) => {
            let report = if req.timers_only {
                let mut report = det.checkpoint_timers(req.now, req.only);
                // Memory backstop: timer-only sweeps deliberately
                // leave the pending replay window alone, but a
                // backend that only ever sees timer sweeps (a
                // standalone scheduled backend with no snapshot
                // provider and no caller checkpoints) must not
                // grow without bound. Past the high-water mark the
                // sweep drains it in pure event-stream mode —
                // replaying exactly what the next window
                // checkpoint would have replayed anyway (watermark
                // dedup keeps later windows exact).
                if det.pending_total() > PENDING_REPLAY_HIGH_WATER {
                    report.merge(det.checkpoint_scoped(
                        req.now,
                        &HashMap::new(),
                        &HashMap::new(),
                        req.only,
                    ));
                    report.sort_canonical();
                }
                report
            } else if req.events.is_empty() {
                det.checkpoint_scoped(req.now, &req.snapshots, &req.gates, req.only)
            } else {
                det.checkpoint(req.now, &req.events, &req.snapshots)
            };
            let _ = req.reply.send(report);
        }
        ShardMsg::WouldViolate { monitor, pid, proc_name, reply } => {
            let _ = reply.send(det.call_would_violate(monitor, pid, proc_name));
        }
        ShardMsg::Flush { reply } => {
            let _ = reply.send(());
        }
        ShardMsg::Shutdown => {}
    }
}

/// A detection service that partitions monitors across worker shards
/// and ingests events in batches.
///
/// Functionally equivalent to one inline [`Detector`] — same
/// registrations, same violations — but the checking work for
/// different monitors runs on different threads, and ingestion costs
/// one channel send per *batch* per shard instead of one lock per
/// event.
///
/// Dropping the handle shuts the workers down (their inboxes
/// disconnect) and joins them.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::service::{ServiceConfig, ShardedDetector};
/// use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, MonitorState, Nanos, Pid};
/// use std::collections::HashMap;
/// use std::sync::Arc;
///
/// let bb = MonitorSpec::bounded_buffer("buf", 2);
/// let m = MonitorId::new(0);
/// let svc = ShardedDetector::new(
///     DetectorConfig::without_timeouts(),
///     ServiceConfig::new(2).queue_capacity(8),
/// );
/// svc.register_empty(m, Arc::new(bb.spec.clone()), Nanos::ZERO);
///
/// let window = vec![
///     Event::enter(1, Nanos::new(10), m, Pid::new(1), bb.send, true),
///     Event::signal_exit(2, Nanos::new(20), m, Pid::new(1), bb.send, Some(bb.empty_cond), false),
/// ];
/// svc.observe_batch(&window);
///
/// let mut snaps = HashMap::new();
/// snaps.insert(m, MonitorState::with_resources(2, 1));
/// let report = svc.checkpoint(Nanos::new(30), &window, &snaps);
/// assert!(report.is_clean(), "{report}");
/// assert_eq!(report.events_checked, 2);
/// ```
#[derive(Debug)]
pub struct ShardedDetector {
    cfg: DetectorConfig,
    senders: Vec<Sender<ShardMsg>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    collector: Arc<Collector>,
    /// Registered monitors, in registration order — the directory a
    /// scoped checkpoint (or a scheduler sweep) walks to know which
    /// monitors live on which shard. Shared (`Arc`) so a detached
    /// scheduler ticker can consult it without borrowing the service.
    directory: Arc<Mutex<Vec<MonitorId>>>,
}

impl ShardedDetector {
    /// Spawns `service.shards` worker threads, each owning a private
    /// [`Detector`] built from `cfg`.
    pub fn new(cfg: DetectorConfig, service: ServiceConfig) -> Self {
        let shards = service.shards.max(1);
        let collector = Arc::new(Collector::new(shards));
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = bounded(service.queue_capacity.max(1));
            let coll = Arc::clone(&collector);
            let handle = thread::Builder::new()
                .name(format!("rmon-shard-{shard}"))
                .spawn(move || shard_worker(shard, cfg, rx, coll))
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(handle);
        }
        ShardedDetector {
            cfg,
            senders,
            workers: Mutex::new(workers),
            collector,
            directory: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The timing configuration every shard's detector was built from.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard that owns `monitor` (see [`shard_for`]).
    pub fn shard_of(&self, monitor: MonitorId) -> usize {
        shard_for(monitor, self.senders.len())
    }

    /// Registers a monitor on its shard. Like
    /// [`Detector::register`], events for unregistered monitors are
    /// ignored.
    pub fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        {
            let mut directory =
                self.directory.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            if !directory.contains(&monitor) {
                directory.push(monitor);
            }
        }
        let shard = self.shard_of(monitor);
        self.send(shard, ShardMsg::Register { monitor, spec, initial: initial.clone(), now });
    }

    /// The registered monitors, in registration order.
    pub fn monitor_ids(&self) -> Vec<MonitorId> {
        self.directory.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).clone()
    }

    /// The registered monitors owned by `shard` (see [`shard_for`]).
    pub fn monitors_on(&self, shard: usize) -> Vec<MonitorId> {
        let n = self.senders.len();
        self.monitor_ids().into_iter().filter(|&m| shard_for(m, n) == shard).collect()
    }

    /// Shared handle to the monitor directory, for detached consumers
    /// (the scheduler ticker).
    pub(crate) fn directory(&self) -> Arc<Mutex<Vec<MonitorId>>> {
        Arc::clone(&self.directory)
    }

    /// Registers a monitor starting from the canonical empty state
    /// ([`MonitorSpec::empty_state`]).
    pub fn register_empty(&self, monitor: MonitorId, spec: Arc<MonitorSpec>, now: Nanos) {
        let initial = spec.empty_state();
        self.register(monitor, spec, &initial, now);
    }

    /// Ingests one event (no allocation — the event travels inline in
    /// its message). Prefer [`Self::observe_batch`] — batching is where
    /// the service's dispatch amortisation comes from.
    ///
    /// Unlike [`Detector::observe`] this is asynchronous: violations
    /// surface through [`Self::drain_violations`] (or the next
    /// [`Self::checkpoint`]'s ordering guarantee), not the call site.
    pub fn observe(&self, event: Event) {
        let shard = self.shard_of(event.monitor);
        self.send(shard, ShardMsg::One(event));
    }

    /// Ingests a batch of events: partitions them per shard and sends
    /// each shard at most one message. Blocks only when a shard's
    /// bounded inbox is full (backpressure).
    ///
    /// Calls that carry events for the *same monitor* must not race
    /// each other — see the module-level **ordering precondition**.
    pub fn observe_batch(&self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        let n = self.senders.len();
        let mut per_shard: Vec<Vec<Event>> = vec![Vec::new(); n];
        for event in events {
            per_shard[shard_for(event.monitor, n)].push(*event);
        }
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                self.send(shard, ShardMsg::Batch(batch));
            }
        }
    }

    /// Barrier: returns once every shard has drained its inbox up to
    /// this call. After `flush`, [`Self::stats`] and
    /// [`Self::drain_violations`] reflect everything previously
    /// ingested.
    pub fn flush(&self) {
        let replies: Vec<Receiver<()>> = self
            .senders
            .iter()
            .enumerate()
            .map(|(shard, _)| {
                let (tx, rx) = bounded(1);
                self.send(shard, ShardMsg::Flush { reply: tx });
                rx
            })
            .collect();
        for rx in replies {
            let _ = rx.recv();
        }
    }

    /// Runs the periodic checking routine on every shard and merges the
    /// per-shard reports into one, with violations re-sorted into the
    /// same canonical `(event, rule)` order [`Detector::checkpoint`]
    /// uses.
    ///
    /// Per-shard FIFO ordering guarantees that all batches ingested
    /// before this call are processed before the shard checks — no
    /// explicit [`Self::flush`] needed.
    pub fn checkpoint(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        let n = self.senders.len();
        let mut per_events: Vec<Vec<Event>> = vec![Vec::new(); n];
        for event in events {
            per_events[shard_for(event.monitor, n)].push(*event);
        }
        let mut per_snaps: Vec<HashMap<MonitorId, MonitorState>> = vec![HashMap::new(); n];
        for (&monitor, state) in snapshots {
            per_snaps[shard_for(monitor, n)].insert(monitor, state.clone());
        }
        let replies: Vec<Receiver<FaultReport>> = per_events
            .into_iter()
            .zip(per_snaps)
            .enumerate()
            .map(|(shard, (events, snapshots))| {
                let (tx, rx) = bounded(1);
                self.send(
                    shard,
                    ShardMsg::Checkpoint(CheckpointReq {
                        now,
                        events,
                        snapshots,
                        gates: HashMap::new(),
                        only: None,
                        timers_only: false,
                        reply: tx,
                    }),
                );
                rx
            })
            .collect();
        FaultReport::merged(replies.into_iter().filter_map(|rx| rx.recv().ok()))
    }

    /// Non-mutating real-time lookahead, answered synchronously by the
    /// owning shard (see [`Detector::call_would_violate`]). Pending
    /// batches for that shard are processed first — FIFO again — so the
    /// answer reflects every event already ingested.
    pub fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        let shard = self.shard_of(monitor);
        let (tx, rx) = bounded(1);
        self.send(shard, ShardMsg::WouldViolate { monitor, pid, proc_name, reply: tx });
        rx.recv().ok().flatten()
    }

    /// Snapshots the per-shard counters. For a quiescent view (all
    /// ingested batches counted), call [`Self::flush`] first.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats { shards: self.collector.lock().shards.clone() }
    }

    /// Takes all real-time violations collected so far (the batched
    /// analogue of [`Detector::observe`]'s return values).
    #[must_use = "dropping the return value discards detected violations"]
    pub fn drain_violations(&self) -> Vec<Violation> {
        std::mem::take(&mut self.collector.lock().violations)
    }

    /// Stops the service: every shard receives an explicit shutdown
    /// message (processed after all previously ingested batches — FIFO
    /// again) and the worker threads are joined. Subsequent ingestion
    /// is silently dropped, including sends from producer handles still
    /// holding cloned inbox senders. Idempotent.
    pub fn shutdown(&self) {
        // The workers lock is held across send + join so a concurrent
        // second caller blocks until the workers are actually gone —
        // "returned from shutdown" must mean "stopped", not "somebody
        // is stopping it". (The workers never take this lock, so
        // blocking on a full inbox while holding it is plain
        // backpressure, not a cycle.)
        let mut workers = self.workers.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if workers.is_empty() {
            return;
        }
        for shard in 0..self.senders.len() {
            self.send(shard, ShardMsg::Shutdown);
        }
        // Join (ignore panics: a dead shard already surfaced as
        // dropped traffic).
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Clones of the per-shard inbox senders, in shard order — the raw
    /// material of a producer handle or a checkpoint scheduler: a
    /// thread that owns its own clones talks to the shards without
    /// touching any state shared with other producers.
    pub(crate) fn shard_senders(&self) -> Vec<Sender<ShardMsg>> {
        self.senders.clone()
    }

    /// Enqueues a checkpoint on one shard through detached sender
    /// clones (no `&self` — this is what a scheduler thread, which
    /// cannot borrow the service, runs per tick, and what a scoped
    /// [`crate::detect::DetectionBackend::checkpoint`] fans out over),
    /// returning the reply channel so independent shards can be
    /// requested first and collected after — checkpointing N shards
    /// costs the slowest shard's latency, not the sum.
    ///
    /// With `timers_only` the shard checks its timers against its
    /// shard-local lists and keeps them; otherwise it replays its
    /// pending real-time window and compares against `snapshots` under
    /// the consistency `gates` (see
    /// [`crate::detect::Detector::checkpoint_scoped`]).
    pub(crate) fn request_checkpoint_on(
        senders: &[Sender<ShardMsg>],
        shard: usize,
        now: Nanos,
        snapshots: HashMap<MonitorId, MonitorState>,
        gates: HashMap<MonitorId, u64>,
        only: Option<MonitorId>,
        timers_only: bool,
    ) -> Receiver<FaultReport> {
        let (tx, rx) = bounded(1);
        let _ = senders[shard].send(ShardMsg::Checkpoint(CheckpointReq {
            now,
            events: Vec::new(),
            snapshots,
            gates,
            only,
            timers_only,
            reply: tx,
        }));
        rx
    }

    /// Blocking single-shard form of [`Self::request_checkpoint_on`]
    /// (the scheduler's per-tick call).
    pub(crate) fn checkpoint_on(
        senders: &[Sender<ShardMsg>],
        shard: usize,
        now: Nanos,
        snapshots: HashMap<MonitorId, MonitorState>,
        gates: HashMap<MonitorId, u64>,
        only: Option<MonitorId>,
        timers_only: bool,
    ) -> FaultReport {
        Self::request_checkpoint_on(senders, shard, now, snapshots, gates, only, timers_only)
            .recv()
            .unwrap_or_default()
    }

    fn send(&self, shard: usize, msg: ShardMsg) {
        // A send can only fail if the worker died (panicked or shut
        // down); the service degrades to dropping that shard's traffic
        // rather than poisoning every caller.
        let _ = self.senders[shard].send(msg);
    }
}

impl Drop for ShardedDetector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleId;
    use crate::spec::MonitorSpec;

    fn allocator_spec() -> (Arc<MonitorSpec>, crate::spec::AllocatorSpec) {
        let al = MonitorSpec::allocator("res", 1);
        (Arc::new(al.spec.clone()), al)
    }

    fn service(shards: usize) -> ShardedDetector {
        ShardedDetector::new(DetectorConfig::without_timeouts(), ServiceConfig::new(shards))
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8] {
            for id in 0..256u32 {
                let m = MonitorId::new(id);
                let s = shard_for(m, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(m, shards), "same id must map to same shard");
            }
        }
        // And the instance method agrees with the free function.
        let svc = service(4);
        for id in 0..32 {
            let m = MonitorId::new(id);
            assert_eq!(svc.shard_of(m), shard_for(m, 4));
        }
    }

    #[test]
    fn shard_assignment_spreads_across_shards() {
        let shards = 4;
        let mut seen = vec![0u32; shards];
        for id in 0..64 {
            seen[shard_for(MonitorId::new(id), shards)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "64 ids must touch all 4 shards: {seen:?}");
    }

    #[test]
    fn batch_matches_single_event_ingestion() {
        // Same faulty fleet through (a) per-event observe and (b) one
        // big batch: identical violation multisets.
        let (spec, al) = allocator_spec();
        let singles = service(4);
        let batched = service(4);
        let mut events = Vec::new();
        let mut seq = 0;
        for id in 0..8u32 {
            let m = MonitorId::new(id);
            singles.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
            batched.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
            // request, duplicate request, release by a stranger.
            for (pid, proc_name) in [(1, al.request), (1, al.request), (2, al.release)] {
                seq += 1;
                events.push(Event::enter(
                    seq,
                    Nanos::new(seq * 10),
                    m,
                    Pid::new(pid),
                    proc_name,
                    false,
                ));
            }
        }
        for e in &events {
            singles.observe(*e);
        }
        batched.observe_batch(&events);
        singles.flush();
        batched.flush();
        let key = |v: &Violation| (v.monitor, v.event_seq, v.rule);
        let mut a = singles.drain_violations();
        let mut b = batched.drain_violations();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn sharded_matches_inline_detector() {
        // The service at any shard count reports exactly what one
        // inline Detector reports.
        let (spec, al) = allocator_spec();
        let mut inline = Detector::new(DetectorConfig::without_timeouts());
        let mut events = Vec::new();
        let mut seq = 0;
        for id in 0..8u32 {
            let m = MonitorId::new(id);
            inline.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
            seq += 1;
            events.push(Event::enter(seq, Nanos::new(seq * 10), m, Pid::new(1), al.release, true));
        }
        let mut want = inline.observe_batch(&events);
        let key = |v: &Violation| (v.monitor, v.event_seq, v.rule);
        want.sort_by_key(key);
        for shards in [1usize, 2, 4] {
            let svc = service(shards);
            for id in 0..8u32 {
                svc.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
            }
            svc.observe_batch(&events);
            svc.flush();
            let mut got = svc.drain_violations();
            got.sort_by_key(key);
            assert_eq!(got, want, "shards={shards}");
        }
    }

    #[test]
    fn checkpoint_merges_per_shard_reports() {
        let (spec, al) = allocator_spec();
        let svc = service(4);
        let mut events = Vec::new();
        for id in 0..8u32 {
            let m = MonitorId::new(id);
            svc.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
            events.push(Event::enter(
                u64::from(id) + 1,
                Nanos::new(10),
                m,
                Pid::new(1),
                al.request,
                true,
            ));
        }
        let report = svc.checkpoint(Nanos::new(100), &events, &HashMap::new());
        assert_eq!(report.events_checked, 8);
        let seqs: Vec<_> = report.violations.iter().map(|v| v.event_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort();
        assert_eq!(seqs, sorted, "merged report must be canonically ordered");
    }

    #[test]
    fn stats_count_batches_events_and_monitors() {
        let (spec, al) = allocator_spec();
        let svc = service(2);
        for id in 0..6u32 {
            svc.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
        }
        let events: Vec<Event> = (0..6u32)
            .map(|id| {
                Event::enter(
                    u64::from(id) + 1,
                    Nanos::new(10),
                    MonitorId::new(id),
                    Pid::new(1),
                    al.request,
                    true,
                )
            })
            .collect();
        svc.observe_batch(&events);
        svc.flush();
        let stats = svc.stats();
        assert_eq!(stats.shard_count(), 2);
        assert_eq!(stats.total_events(), 6);
        assert_eq!(stats.shards.iter().map(|s| s.monitors).sum::<u64>(), 6);
        assert!(stats.total_batches() >= 1);
        assert!(stats.active_shards() >= 1);
    }

    #[test]
    fn call_would_violate_sees_pending_batches() {
        let (spec, al) = allocator_spec();
        let svc = service(3);
        let m = MonitorId::new(5);
        svc.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        // Before any request, releasing would violate ST-8b.
        assert_eq!(
            svc.call_would_violate(m, Pid::new(1), al.release),
            Some(RuleId::St8ReleaseWithoutRequest)
        );
        // Ingest a request (async) — the lookahead is FIFO-ordered
        // behind it, so it must see the granted right.
        svc.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
        assert_eq!(svc.call_would_violate(m, Pid::new(1), al.release), None);
        assert_eq!(
            svc.call_would_violate(m, Pid::new(1), al.request),
            Some(RuleId::St8DuplicateRequest)
        );
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let (spec, al) = allocator_spec();
        let svc = service(4);
        for id in 0..16u32 {
            svc.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
        }
        let events: Vec<Event> = (0..16u32)
            .map(|id| {
                Event::enter(
                    u64::from(id) + 1,
                    Nanos::new(10),
                    MonitorId::new(id),
                    Pid::new(1),
                    al.request,
                    true,
                )
            })
            .collect();
        svc.observe_batch(&events);
        drop(svc); // must not hang or panic
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let svc = service(2);
        svc.observe_batch(&[]);
        svc.flush();
        assert_eq!(svc.stats().total_batches(), 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_processes_prior_batches() {
        let (spec, al) = allocator_spec();
        let svc = service(2);
        let m = MonitorId::new(1);
        svc.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        svc.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.release, true));
        svc.shutdown();
        svc.shutdown(); // second call must be a no-op
                        // The batch ingested before shutdown was processed (FIFO).
        assert!(!svc.drain_violations().is_empty());
        // Ingestion after shutdown is dropped, not a panic or a hang.
        svc.observe(Event::enter(2, Nanos::new(20), m, Pid::new(1), al.release, true));
        assert!(svc.drain_violations().is_empty());
    }

    #[test]
    fn shutdown_drains_in_flight_checkpoint_round_trips() {
        // A scoped checkpoint racing shutdown: the checkpoint request is
        // already in the shard's inbox *behind* the shutdown marker.
        // The worker must answer it (with a real report) before exiting
        // instead of dropping the reply channel.
        let (spec, al) = allocator_spec();
        let svc = service(2);
        let m = MonitorId::new(1);
        let shard = svc.shard_of(m);
        svc.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        svc.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
        svc.flush();
        let senders = svc.shard_senders();
        // Deterministically park the worker: a lookahead whose reply
        // channel is pre-filled blocks the worker's reply send until we
        // drain it, so everything below is queued before the worker
        // moves again.
        let (park_tx, park_rx) = bounded(1);
        park_tx.send(None).unwrap();
        senders[shard]
            .send(ShardMsg::WouldViolate {
                monitor: m,
                pid: Pid::new(1),
                proc_name: al.request,
                reply: park_tx,
            })
            .unwrap();
        senders[shard].send(ShardMsg::Shutdown).unwrap();
        let reply = ShardedDetector::request_checkpoint_on(
            &senders,
            shard,
            Nanos::new(100),
            HashMap::new(),
            HashMap::new(),
            None,
            false,
        );
        // Unblock the worker; it then sees Shutdown and must drain the
        // checkpoint behind it.
        assert_eq!(park_rx.recv().unwrap(), None);
        let report = reply
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("in-flight checkpoint must be answered during shutdown");
        assert_eq!(report.events_checked, 1, "drain must run the real checkpoint: {report}");
        svc.shutdown();
        // After the workers are gone, a late checkpoint degrades to a
        // disconnected reply (default at the caller) — never a hang.
        let late = ShardedDetector::checkpoint_on(
            &senders,
            shard,
            Nanos::new(200),
            HashMap::new(),
            HashMap::new(),
            None,
            false,
        );
        assert_eq!(late, FaultReport::default());
    }

    #[test]
    fn checkpoint_on_sweeps_only_the_addressed_shard() {
        // A timer-only sweep over detached sender clones — the
        // scheduler's per-tick primitive: only the shard owning the
        // monitor reports its expired hold.
        let (spec, al) = allocator_spec();
        let cfg = DetectorConfig::builder()
            .t_max(Nanos::from_secs(100))
            .t_io(Nanos::from_secs(100))
            .t_limit(Nanos::from_millis(1))
            .build();
        let svc = ShardedDetector::new(cfg, ServiceConfig::new(4));
        let m = MonitorId::new(3);
        let shard = svc.shard_of(m);
        svc.register_empty(m, Arc::clone(&spec), Nanos::ZERO);
        svc.observe(Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true));
        svc.flush();
        let senders = svc.shard_senders();
        let late = Nanos::from_secs(1);
        let sweep = |s: usize| {
            ShardedDetector::checkpoint_on(
                &senders,
                s,
                late,
                HashMap::new(),
                HashMap::new(),
                None,
                true,
            )
        };
        let other = sweep((shard + 1) % 4);
        assert!(other.is_clean(), "{other}");
        let owner = sweep(shard);
        assert!(owner.violates_any(&[RuleId::St8HoldTimeout]), "{owner}");
    }

    #[test]
    fn directory_tracks_registered_monitors_per_shard() {
        let (spec, _) = allocator_spec();
        let svc = service(4);
        for id in 0..12u32 {
            svc.register_empty(MonitorId::new(id), Arc::clone(&spec), Nanos::ZERO);
        }
        // Duplicate registration does not duplicate the directory entry.
        svc.register_empty(MonitorId::new(3), Arc::clone(&spec), Nanos::ZERO);
        assert_eq!(svc.monitor_ids().len(), 12);
        let mut union: Vec<MonitorId> = (0..4).flat_map(|s| svc.monitors_on(s)).collect();
        union.sort();
        let mut want: Vec<MonitorId> = (0..12u32).map(MonitorId::new).collect();
        want.sort();
        assert_eq!(union, want, "shard partitions must cover every monitor exactly once");
        for s in 0..4 {
            for m in svc.monitors_on(s) {
                assert_eq!(svc.shard_of(m), s);
            }
        }
    }
}
