//! Predictive detection over the recorded happens-before partial order.
//!
//! The executed schedule is one linearization of a *partial* order: the
//! recorder's sequence counter serializes events, but only
//! monitor-mediated synchronization actually constrains them. A window
//! that is clean as executed may hide a violation in an *equivalent
//! reordering* — a different legal linearization of the same partial
//! order the program could just as well have taken. This module finds
//! such violations and reports them as
//! [`crate::PredictedViolation`]s, each carrying a **witness**: the
//! reordered schedule under which the violation fires.
//!
//! The approach follows the predictive trace-analysis tradition started
//! by Ang & Mathur-style happens-before race prediction: annotate the
//! trace with vector clocks ([`Annotation`]), then search the space of
//! legal linearizations for rule violations. Two predictors run per
//! checkpoint window:
//!
//! * **ST-8c hold-timer retiming** ([`RuleId::St8HoldTimeout`]) — a
//!   hold that stayed under `Tlimit` as executed may exceed it when its
//!   `Request` commutes earlier and/or its `Release` commutes later.
//!   For a request `r` the earliest feasible position is
//!   `minpos(r)` = the number of happens-before predecessors of `r` in
//!   the window; for a release `l` the latest is `maxpos(l)` =
//!   `n − 1 − #successors`. Re-timing the pair onto the window's sorted
//!   timestamp multiset bounds the feasible hold duration.
//! * **Global call-order search** ([`RuleId::St8CallOrder`]) — when the
//!   executed *global* call sequence conforms to the monitor's declared
//!   path expression, a depth-first search over legal linearizations
//!   (frontier = per-process next-event vector, path-NFA state set
//!   alongside, memoized and budget-capped) looks for a reordering in
//!   which some call falls outside the declared order.
//!
//! Both predictors are **sound with respect to the annotation**: every
//! witness is a legal linearization of the recorded partial order
//! ([`is_legal_linearization`] — the property suite checks this for
//! every emitted prediction), and windows without concurrency (no
//! blocked entry attempts) admit exactly one linearization, so
//! race-free traces yield zero predictions. The search is deliberately
//! *incomplete*: clock saturation, unset stamps and the DFS budget all
//! degrade toward "fewer predictions", never toward unsound ones.

use crate::config::DetectorConfig;
use crate::event::{Event, EventKind};
use crate::ids::{MonitorId, Pid};
use crate::rule::RuleId;
use crate::spec::{MonitorSpec, ProcRole};
use crate::time::Nanos;
use crate::vclock::VClock;
use crate::violation::{PredictedViolation, Violation};
use std::collections::{HashMap, HashSet};

/// Upper bound on node expansions of the call-order linearization
/// search, per monitor window. Exhausting it truncates the search —
/// soundly: predictions may be missed, never fabricated.
const ORDER_SEARCH_BUDGET: usize = 50_000;

/// Happens-before stamps for one checkpoint's event windows: a map from
/// event sequence number to its [`VClock`].
///
/// When every event already carries a stamp (the recorder attached
/// clocks at segment publication), the carried stamps are adopted
/// verbatim. Otherwise the annotation is recomputed offline from the
/// monitor-mediated synchronization order — slots assigned to threads
/// by first appearance, thread clocks merging the monitor clock on
/// granted entries and resumptions, monitor clocks absorbing thread
/// clocks at every releasing event.
#[derive(Debug, Default)]
pub struct Annotation {
    clocks: HashMap<u64, VClock>,
}

impl Annotation {
    /// Annotates a whole checkpoint's per-monitor windows at once, so
    /// cross-monitor happens-before edges (one thread touching two
    /// monitors) are captured.
    pub fn over(windows: &[(MonitorId, Vec<Event>)]) -> Annotation {
        let mut events: Vec<&Event> = windows.iter().flat_map(|(_, w)| w.iter()).collect();
        events.sort_unstable_by_key(|e| e.seq);
        Self::from_events(&events)
    }

    /// Annotates a single window (testing convenience).
    pub fn over_window(window: &[Event]) -> Annotation {
        let mut events: Vec<&Event> = window.iter().collect();
        events.sort_unstable_by_key(|e| e.seq);
        Self::from_events(&events)
    }

    fn from_events(events: &[&Event]) -> Annotation {
        // Carried stamps win: the live recorder drew `seq` and the
        // clock under the same lock, so they are mutually consistent.
        if !events.is_empty() && events.iter().all(|e| e.vc.is_set()) {
            return Annotation { clocks: events.iter().map(|e| (e.seq, e.vc)).collect() };
        }
        let mut slots: HashMap<Pid, usize> = HashMap::new();
        let mut threads: HashMap<Pid, VClock> = HashMap::new();
        let mut monitors: HashMap<MonitorId, VClock> = HashMap::new();
        let mut clocks = HashMap::with_capacity(events.len());
        for e in events {
            let next = slots.len();
            let slot = *slots.entry(e.pid).or_insert(next);
            let thread = threads.entry(e.pid).or_insert_with(|| VClock::for_slot(slot));
            let monitor = monitors.entry(e.monitor).or_insert(VClock::UNSET);
            // A granted entry (and every resumption-carrying event)
            // synchronizes with everything the monitor has seen; a
            // *blocked* attempt is recorded before acquisition and
            // synchronizes with nothing — the window's only source of
            // intra-monitor concurrency.
            let acquires = !matches!(e.kind, EventKind::Enter { granted: false });
            if acquires {
                thread.merge(monitor);
            }
            thread.tick();
            clocks.insert(e.seq, *thread);
            // Releasing events publish the thread's history to the
            // monitor (Wait releases the lock; Signal-Exit and
            // Terminate leave the monitor).
            let releases = matches!(
                e.kind,
                EventKind::Wait { .. } | EventKind::SignalExit { .. } | EventKind::Terminate
            );
            if releases {
                monitor.merge(thread);
            }
        }
        Annotation { clocks }
    }

    /// The stamp of event `seq` ([`VClock::UNSET`] if unannotated).
    pub fn clock_of(&self, seq: u64) -> VClock {
        self.clocks.get(&seq).copied().unwrap_or(VClock::UNSET)
    }

    /// Whether `a` happens before `b` under this annotation. Degenerate
    /// stamps (unset, saturated) fall back to sequence order — the
    /// sound direction: the executed total order is a linear extension
    /// of happens-before, so the fallback only *removes* commutation
    /// freedom.
    pub fn happens_before(&self, a: &Event, b: &Event) -> bool {
        if a.seq == b.seq {
            return false;
        }
        let ca = self.clock_of(a.seq);
        let cb = self.clock_of(b.seq);
        match (ca.owner(), cb.owner()) {
            (Some(slot), Some(_)) => cb.get(slot) >= ca.get(slot),
            _ => a.seq < b.seq,
        }
    }

    /// Whether two events are concurrent (neither happens before the
    /// other) under this annotation.
    pub fn concurrent(&self, a: &Event, b: &Event) -> bool {
        a.seq != b.seq && !self.happens_before(a, b) && !self.happens_before(b, a)
    }
}

/// Whether `witness` is a legal linearization of `window`'s recorded
/// partial order: a permutation of the window's sequence numbers in
/// which no event is placed before one of its happens-before
/// predecessors.
pub fn is_legal_linearization(witness: &[u64], window: &[Event], ann: &Annotation) -> bool {
    if witness.len() != window.len() {
        return false;
    }
    let by_seq: HashMap<u64, &Event> = window.iter().map(|e| (e.seq, e)).collect();
    if by_seq.len() != window.len() {
        return false;
    }
    let mut seen: HashSet<u64> = HashSet::with_capacity(witness.len());
    for seq in witness {
        if !by_seq.contains_key(seq) || !seen.insert(*seq) {
            return false;
        }
    }
    for (i, earlier) in witness.iter().enumerate() {
        for later in &witness[i + 1..] {
            if ann.happens_before(by_seq[later], by_seq[earlier]) {
                return false;
            }
        }
    }
    true
}

/// Runs every predictor over one monitor's checkpoint window (assumed
/// `seq`-sorted, as the engine's replay produces it), appending
/// findings to `out`. The entry point behind
/// [`crate::PredictMode::Checkpoint`].
pub fn predict_window(
    monitor: MonitorId,
    spec: &MonitorSpec,
    cfg: &DetectorConfig,
    window: &[Event],
    ann: &Annotation,
    now: Nanos,
    out: &mut Vec<PredictedViolation>,
) {
    if window.len() < 2 {
        return;
    }
    predict_hold_timeouts(monitor, spec, cfg, window, ann, now, out);
    predict_call_order(monitor, spec, window, ann, now, out);
}

/// ST-8c retiming: finds Request/Release pairs (and still-open
/// requests) whose executed hold respected `Tlimit` but whose feasible
/// commutation range does not.
fn predict_hold_timeouts(
    monitor: MonitorId,
    spec: &MonitorSpec,
    cfg: &DetectorConfig,
    window: &[Event],
    ann: &Annotation,
    now: Nanos,
    out: &mut Vec<PredictedViolation>,
) {
    let n = window.len();
    // The window's timestamp multiset in nondecreasing order: slot `k`
    // of any linearization happens no earlier than `times[k]`.
    let mut times: Vec<Nanos> = window.iter().map(|e| e.time).collect();
    times.sort_unstable();
    // Pair requests with their releases the way the Request-List does:
    // acquisition at `Enter` of a Request-role procedure, removal at
    // the successful completion (`SignalExit`) of a Release-role one.
    let mut open: Vec<(Pid, usize)> = Vec::new();
    let mut holds: Vec<(usize, Option<usize>)> = Vec::new();
    for (i, e) in window.iter().enumerate() {
        match e.kind {
            // Duplicate requests are ST-8a's business, not ours.
            EventKind::Enter { .. }
                if spec.proc_role(e.proc_name) == ProcRole::Request
                    && !open.iter().any(|(p, _)| *p == e.pid) =>
            {
                open.push((e.pid, i));
            }
            EventKind::SignalExit { .. } if spec.proc_role(e.proc_name) == ProcRole::Release => {
                if let Some(pos) = open.iter().position(|(p, _)| *p == e.pid) {
                    let (_, ri) = open.remove(pos);
                    holds.push((ri, Some(i)));
                }
            }
            _ => {}
        }
    }
    holds.extend(open.into_iter().map(|(_, ri)| (ri, None)));
    for (ri, li) in holds {
        let r = &window[ri];
        let executed = match li {
            Some(li) => window[li].time.saturating_since(r.time),
            None => now.saturating_since(r.time),
        };
        if executed > cfg.t_limit {
            // The executed schedule itself violates ST-8c: that is (or
            // was) the real-time hold timer's finding, not a prediction.
            continue;
        }
        let minpos = window.iter().filter(|e| ann.happens_before(e, r)).count();
        let (end, maxpos) = match li {
            Some(li) => {
                let l = &window[li];
                let succs = window.iter().filter(|e| ann.happens_before(l, e)).count();
                let maxpos = n - 1 - succs;
                (times[maxpos], Some(maxpos))
            }
            None => (now, None),
        };
        let predicted = end.saturating_since(times[minpos]);
        if predicted <= cfg.t_limit {
            continue;
        }
        let witness = retimed_witness(window, ann, ri, li);
        let detail = match maxpos {
            Some(_) => format!(
                "a feasible reordering lets {} hold an access right for {} \
                 (executed hold {}, Tlimit = {})",
                r.pid, predicted, executed, cfg.t_limit
            ),
            None => format!(
                "a feasible reordering lets {} hold an access right for {} and counting \
                 (executed hold {}, Tlimit = {})",
                r.pid, predicted, executed, cfg.t_limit
            ),
        };
        out.push(PredictedViolation {
            violation: Violation::new(monitor, RuleId::St8HoldTimeout, now, detail)
                .with_pid(r.pid)
                .with_event(r.seq),
            witness,
        });
    }
}

/// Builds the witness linearization realizing a retimed hold: the
/// request's happens-before down-set first, then the request, then the
/// unconstrained middle, then the release and its up-set — each block
/// in sequence order. Down-sets are downward closed and up-sets upward
/// closed (happens-before is transitive), so the result is always a
/// legal linearization.
fn retimed_witness(window: &[Event], ann: &Annotation, ri: usize, li: Option<usize>) -> Vec<u64> {
    let r = &window[ri];
    let down: Vec<bool> = window.iter().map(|e| ann.happens_before(e, r)).collect();
    let up: Vec<bool> = match li {
        Some(li) => {
            let l = &window[li];
            window.iter().map(|e| ann.happens_before(l, e)).collect()
        }
        None => vec![false; window.len()],
    };
    let mut witness = Vec::with_capacity(window.len());
    for (i, e) in window.iter().enumerate() {
        if down[i] {
            witness.push(e.seq);
        }
    }
    witness.push(r.seq);
    for (i, e) in window.iter().enumerate() {
        if !down[i] && !up[i] && i != ri && Some(i) != li {
            witness.push(e.seq);
        }
    }
    if let Some(li) = li {
        witness.push(window[li].seq);
        for (i, e) in window.iter().enumerate() {
            if up[i] {
                witness.push(e.seq);
            }
        }
    }
    witness
}

/// Global call-order prediction: a depth-first search over the legal
/// linearizations of the window, advancing the declared path
/// expression's NFA on every `Enter`, reporting linearizations in
/// which a call has no legal continuation.
///
/// The search only runs when the *executed* global call sequence is
/// itself accepted as a prefix of the declared order — the global
/// reading of the path expression is meaningful for this monitor (a
/// multi-unit allocator legally interleaves `request request release`,
/// which already fails the global reading as executed, so prediction
/// stays silent there).
fn predict_call_order(
    monitor: MonitorId,
    spec: &MonitorSpec,
    window: &[Event],
    ann: &Annotation,
    now: Nanos,
    out: &mut Vec<PredictedViolation>,
) {
    let Some(path) = &spec.call_order else { return };
    let Ok(compiled) = path.compile(|name| spec.proc_by_name(name)) else { return };
    // Guard: executed global conformance.
    {
        let mut states = compiled.initial_states();
        for e in window {
            if matches!(e.kind, EventKind::Enter { .. })
                && compiled.advance_states(&mut states, e.proc_name).is_err()
            {
                return;
            }
        }
    }
    // Per-process event lists (program order) and, for every event, how
    // many of each process's events are its happens-before
    // predecessors. Within one process those predecessors form a prefix
    // (transitivity + program order), so a frontier position vector
    // fully determines eligibility.
    let mut pids: Vec<Pid> = Vec::new();
    let mut per_pid: Vec<Vec<usize>> = Vec::new();
    for (i, e) in window.iter().enumerate() {
        let p = match pids.iter().position(|&p| p == e.pid) {
            Some(p) => p,
            None => {
                pids.push(e.pid);
                per_pid.push(Vec::new());
                pids.len() - 1
            }
        };
        per_pid[p].push(i);
    }
    let need: Vec<Vec<usize>> = window
        .iter()
        .map(|e| {
            per_pid
                .iter()
                .map(|evs| evs.iter().filter(|&&j| ann.happens_before(&window[j], e)).count())
                .collect()
        })
        .collect();
    let mut search = OrderSearch {
        window,
        per_pid: &per_pid,
        need: &need,
        compiled: &compiled,
        budget: ORDER_SEARCH_BUDGET,
        memo: HashSet::new(),
        offenders: HashMap::new(),
    };
    let mut positions = vec![0usize; per_pid.len()];
    let mut states = compiled.initial_states();
    let mut prefix: Vec<u64> = Vec::with_capacity(window.len());
    search.dfs(&mut positions, &mut states, &mut prefix);
    let mut found: Vec<(usize, Vec<u64>)> = search.offenders.into_iter().collect();
    found.sort_unstable_by_key(|(i, _)| *i);
    for (i, witness) in found {
        let e = &window[i];
        let fault = match spec.proc_role(e.proc_name) {
            ProcRole::Request => Some(crate::fault::FaultKind::DoubleAcquire),
            ProcRole::Release => Some(crate::fault::FaultKind::ReleaseWithoutAcquire),
            _ => None,
        };
        let mut v = Violation::new(
            monitor,
            RuleId::St8CallOrder,
            now,
            format!(
                "a feasible reordering reaches the call to {} by {} outside \
                 the declared call order {}",
                spec.proc_display(e.proc_name),
                e.pid,
                path.source()
            ),
        )
        .with_pid(e.pid)
        .with_event(e.seq);
        if let Some(f) = fault {
            v = v.with_fault(f);
        }
        out.push(PredictedViolation { violation: v, witness });
    }
}

/// State of the call-order linearization search.
struct OrderSearch<'a> {
    window: &'a [Event],
    per_pid: &'a [Vec<usize>],
    need: &'a [Vec<usize>],
    compiled: &'a crate::path::CompiledPath,
    budget: usize,
    memo: HashSet<(Vec<usize>, Vec<bool>)>,
    /// Offending window index → witness linearization (first found).
    offenders: HashMap<usize, Vec<u64>>,
}

impl OrderSearch<'_> {
    /// Explores every legal linearization reachable from the current
    /// frontier. On a failing NFA advance the offending event and its
    /// witness are recorded and that branch is cut (the automaton has
    /// no continuation); the search keeps going for other offenders.
    fn dfs(&mut self, positions: &mut Vec<usize>, states: &mut Vec<bool>, prefix: &mut Vec<u64>) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        if !self.memo.insert((positions.clone(), states.clone())) {
            return;
        }
        for p in 0..self.per_pid.len() {
            let Some(&i) = self.per_pid[p].get(positions[p]) else { continue };
            let eligible = (0..self.per_pid.len()).all(|q| positions[q] >= self.need[i][q]);
            if !eligible {
                continue;
            }
            let e = &self.window[i];
            let is_call = matches!(e.kind, EventKind::Enter { .. });
            let mut next_states = states.clone();
            if is_call && self.compiled.advance_states(&mut next_states, e.proc_name).is_err() {
                // Violation in this linearization: witness = what was
                // scheduled so far, the offending call, and a legal
                // completion (sequence order of the rest — always legal
                // on the remaining upward-closed set).
                if !self.offenders.contains_key(&i) {
                    let mut witness = prefix.clone();
                    witness.push(e.seq);
                    let placed: HashSet<u64> = witness.iter().copied().collect();
                    for rest in self.window {
                        if !placed.contains(&rest.seq) {
                            witness.push(rest.seq);
                        }
                    }
                    self.offenders.insert(i, witness);
                }
                continue;
            }
            positions[p] += 1;
            prefix.push(e.seq);
            let mut saved = std::mem::replace(states, next_states);
            self.dfs(positions, states, prefix);
            std::mem::swap(states, &mut saved);
            prefix.pop();
            positions[p] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::spec::MonitorSpec;

    const M: MonitorId = MonitorId::new(0);

    /// One unit, two processes: P1 requests, releases; P2's request
    /// attempt *blocks* while P1 still holds (the only concurrency in
    /// the window), then P2 acquires and releases. Clean as executed.
    fn contended_allocator_window() -> (MonitorSpec, Vec<Event>) {
        let al = MonitorSpec::allocator("res", 1);
        let p1 = Pid::new(1);
        let p2 = Pid::new(2);
        let t = Nanos::new;
        let w = vec![
            Event::enter(1, t(10), M, p1, al.request, true),
            Event::signal_exit(2, t(20), M, p1, al.request, None, false),
            Event::enter(3, t(30), M, p1, al.release, true),
            Event::enter(4, t(40), M, p2, al.request, false),
            Event::signal_exit(5, t(50), M, p1, al.release, Some(al.avail_cond), false),
            Event::signal_exit(6, t(60), M, p2, al.request, None, false),
            Event::enter(7, t(70), M, p2, al.release, true),
            Event::signal_exit(8, t(80), M, p2, al.release, None, false),
        ];
        (al.spec, w)
    }

    /// The same shape without contention: P2 only starts after P1 is
    /// completely done, and its entry is granted immediately.
    fn sequential_allocator_window() -> (MonitorSpec, Vec<Event>) {
        let al = MonitorSpec::allocator("res", 1);
        let p1 = Pid::new(1);
        let p2 = Pid::new(2);
        let t = Nanos::new;
        let w = vec![
            Event::enter(1, t(10), M, p1, al.request, true),
            Event::signal_exit(2, t(20), M, p1, al.request, None, false),
            Event::enter(3, t(30), M, p1, al.release, true),
            Event::signal_exit(4, t(40), M, p1, al.release, None, false),
            Event::enter(5, t(50), M, p2, al.request, true),
            Event::signal_exit(6, t(60), M, p2, al.request, None, false),
            Event::enter(7, t(70), M, p2, al.release, true),
            Event::signal_exit(8, t(80), M, p2, al.release, None, false),
        ];
        (al.spec, w)
    }

    #[test]
    fn annotation_orders_program_and_monitor_edges() {
        let (_, w) = contended_allocator_window();
        let ann = Annotation::over_window(&w);
        // Program order.
        assert!(ann.happens_before(&w[0], &w[1]));
        assert!(ann.happens_before(&w[3], &w[5]));
        // Monitor-mediated cross-thread edge: P1's release publishes to
        // the monitor, P2's resumption (its request's Signal-Exit)
        // merges it.
        assert!(ann.happens_before(&w[4], &w[5]));
        // The blocked attempt is the window's concurrency.
        assert!(ann.concurrent(&w[2], &w[3]));
        assert!(ann.concurrent(&w[3], &w[4]));
        assert!(!ann.concurrent(&w[0], &w[3]) || !ann.happens_before(&w[0], &w[3]));
    }

    #[test]
    fn sequential_window_has_unique_linearization() {
        let (_, w) = sequential_allocator_window();
        let ann = Annotation::over_window(&w);
        for a in &w {
            for b in &w {
                if a.seq < b.seq {
                    assert!(
                        ann.happens_before(a, b),
                        "uncontended window must be totally ordered: l{} vs l{}",
                        a.seq,
                        b.seq
                    );
                }
            }
        }
    }

    #[test]
    fn legality_checker_accepts_executed_and_rejects_swaps() {
        let (_, w) = contended_allocator_window();
        let ann = Annotation::over_window(&w);
        let executed: Vec<u64> = w.iter().map(|e| e.seq).collect();
        assert!(is_legal_linearization(&executed, &w, &ann));
        // The blocked attempt commutes before P1's release call …
        assert!(is_legal_linearization(&[1, 2, 4, 3, 5, 6, 7, 8], &w, &ann));
        // … but P2's resumption cannot precede P1's release.
        assert!(!is_legal_linearization(&[1, 2, 3, 4, 6, 5, 7, 8], &w, &ann));
        // Not a permutation.
        assert!(!is_legal_linearization(&[1, 2, 3, 4, 5, 6, 7], &w, &ann));
        assert!(!is_legal_linearization(&[1, 1, 3, 4, 5, 6, 7, 8], &w, &ann));
    }

    #[test]
    fn predicts_hold_timeout_hidden_by_the_executed_schedule() {
        let (spec, w) = contended_allocator_window();
        let ann = Annotation::over_window(&w);
        // P2 held for 40ns as executed (l4@40 .. l8@80) — under a
        // 50ns limit. But l4 has no happens-before predecessor, so the
        // hold could have started in the earliest slot (t=10): 70ns.
        let cfg = DetectorConfig::builder().t_limit(Nanos::new(50)).build();
        let mut out = Vec::new();
        predict_window(M, &spec, &cfg, &w, &ann, Nanos::new(90), &mut out);
        let hold: Vec<_> =
            out.iter().filter(|p| p.violation.rule == RuleId::St8HoldTimeout).collect();
        assert_eq!(hold.len(), 1, "{out:?}");
        assert_eq!(hold[0].violation.pid, Some(Pid::new(2)));
        assert_eq!(hold[0].violation.event_seq, Some(4));
        assert!(is_legal_linearization(&hold[0].witness, &w, &ann), "{:?}", hold[0].witness);
        // The witness puts the request in front.
        assert_eq!(hold[0].witness[0], 4);
    }

    #[test]
    fn predicts_call_order_violation_in_a_commutation() {
        let (spec, w) = contended_allocator_window();
        let ann = Annotation::over_window(&w);
        // Executed global order: request(l1) release(l3) request(l4)
        // release(l7) — conforms. Commuting the blocked l4 before l3
        // reaches request·request, outside `path (request ; release)*`.
        let cfg = DetectorConfig::without_timeouts();
        let mut out = Vec::new();
        predict_window(M, &spec, &cfg, &w, &ann, Nanos::new(90), &mut out);
        let order: Vec<_> =
            out.iter().filter(|p| p.violation.rule == RuleId::St8CallOrder).collect();
        // The illegal reordering request·request is reachable two ways
        // (the blocked l4 commutes before l3, or all the way before
        // l1), so both requests are reported as feasible offenders.
        let seqs: Vec<_> = order.iter().map(|p| p.violation.event_seq).collect();
        assert_eq!(seqs, vec![Some(1), Some(4)], "{out:?}");
        for p in &order {
            assert!(is_legal_linearization(&p.witness, &w, &ann), "{:?}", p.witness);
        }
        // In the l4 witness, l4 precedes P1's release call l3.
        let witness = &order[1].witness;
        let pos = |s: u64| witness.iter().position(|&x| x == s).unwrap();
        assert!(pos(4) < pos(3));
    }

    #[test]
    fn race_free_window_yields_no_predictions() {
        let (spec, w) = sequential_allocator_window();
        let ann = Annotation::over_window(&w);
        let cfg = DetectorConfig::builder().t_limit(Nanos::new(15)).build();
        let mut out = Vec::new();
        predict_window(M, &spec, &cfg, &w, &ann, Nanos::new(90), &mut out);
        // Each executed hold is 30ns > Tlimit=15 — the *real* timer's
        // finding; prediction must not re-report executed violations,
        // and with a unique linearization nothing else is feasible.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn executed_nonconforming_global_order_disables_order_prediction() {
        // Two units: request request release release is legal for the
        // allocator but fails the *global* reading of the declared
        // path, so the order predictor must stay silent.
        let al = MonitorSpec::allocator("res", 2);
        let p1 = Pid::new(1);
        let p2 = Pid::new(2);
        let t = Nanos::new;
        let w = vec![
            Event::enter(1, t(10), M, p1, al.request, true),
            Event::signal_exit(2, t(20), M, p1, al.request, None, false),
            Event::enter(3, t(30), M, p2, al.request, true),
            Event::signal_exit(4, t(40), M, p2, al.request, None, false),
            Event::enter(5, t(50), M, p1, al.release, true),
            Event::signal_exit(6, t(60), M, p1, al.release, None, false),
            Event::enter(7, t(70), M, p2, al.release, true),
            Event::signal_exit(8, t(80), M, p2, al.release, None, false),
        ];
        let ann = Annotation::over_window(&w);
        let cfg = DetectorConfig::without_timeouts();
        let mut out = Vec::new();
        predict_window(M, &al.spec, &cfg, &w, &ann, Nanos::new(90), &mut out);
        assert!(out.iter().all(|p| p.violation.rule != RuleId::St8CallOrder), "{out:?}");
    }
}
