//! The fault-detection algorithms of §3.3.2 and the incremental
//! detector engine.
//!
//! The paper develops three algorithms over the checking lists:
//!
//! * [`algorithm1`] — *General Concurrency-Control Checking*
//!   (ST-Rules 1–6): mutual exclusion, hand-off consistency, ghost
//!   events, non-termination and starvation timers, snapshot
//!   comparison;
//! * [`algorithm2`] — *Consistency-Of-Resource-States Checking*
//!   (ST-Rule 7) for communication-coordinator monitors;
//! * [`algorithm3`] — *Calling-Orders Checking* (ST-Rule 8) for
//!   resource-access-right-allocator monitors, applied **in real time**.
//!
//! The batch entry points in the `algorithm*` modules mirror the paper's
//! pseudo-code exactly (inputs: state at the last checking time, state
//! at the current checking time, the event sequence in between). The
//! [`Detector`] engine runs the same state machines *incrementally*,
//! carrying lists, counters and timers across checking windows the way
//! the prototype's periodically-invoked checking routine does.

//!
//! For deployments watching many monitors at once, [`service`] layers a
//! sharded, batched detection service over the same engine: monitors
//! partition across worker threads by [`service::shard_for`], events
//! arrive in batches over bounded channels, and violations aggregate
//! through a per-shard-counting collector.
//!
//! The [`backend`] module puts a uniform, pluggable API over all of
//! it: [`DetectionBackend`] (where checking runs) × [`ProducerHandle`]
//! (cheap per-thread ingestion handles that own their own batch
//! buffers), with [`InlineBackend`], [`ShardedBackend`] and — adding a
//! per-shard checkpoint [`scheduler`] — [`ScheduledBackend`] as the
//! provided implementations. The checkpoint half of the API is a trait
//! pair of its own: a [`SnapshotProvider`] supplies live monitor-state
//! observations (the paper's `s_t`) and
//! [`DetectionBackend::checkpoint`] runs the full Algorithm-1/2/timer
//! comparison over a [`CheckpointScope`] — the whole backend, one
//! shard, or one monitor — with no caller-drained window required.

pub mod algorithm1;
pub mod algorithm2;
pub mod algorithm3;
pub mod async_backend;
pub mod backend;
mod engine;
pub mod predict;
pub mod scheduler;
pub mod service;

pub use async_backend::{AsyncBackend, ModeController, ModePolicy, Observe};
pub use backend::{
    gather_snapshots, AdaptiveBatch, Backpressure, CheckpointScope, DetectionBackend,
    InlineBackend, ProducerHandle, ShardedBackend, SnapshotProvider, SnapshotTable,
};
pub use engine::{Detector, MonitorChecker};
pub use scheduler::{ClockFn, ScheduledBackend, SchedulerConfig};
pub use service::{ServiceConfig, ServiceStats, ShardStats, ShardedDetector};
