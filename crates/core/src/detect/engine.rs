//! The incremental detector engine.
//!
//! The paper's prototype (§4) couples a *data-gathering routine* (runs
//! in real time, invoked by the three monitor primitives) with a
//! *checking routine* (invoked periodically every `T`). [`Detector`]
//! is the checking routine: it owns per-monitor checking lists that are
//! carried from one checking window to the next, exactly as §3.3
//! prescribes — *"only the states at the last checking time and the
//! current checking time are recorded; the state sequence in between is
//! not needed"*.
//!
//! Real-time user-process-level checks (Algorithm-3) run in
//! [`Detector::observe`], which the recording layer calls as each event
//! is gathered; periodic checks (Algorithms 1 and 2 plus the timers)
//! run in [`Detector::checkpoint`].

use crate::config::DetectorConfig;
use crate::event::Event;
use crate::ids::MonitorId;
use crate::lists::{GeneralLists, OrderState, ResourceState};
use crate::spec::MonitorSpec;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::{FaultReport, Violation};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-monitor incremental checking state.
#[derive(Debug, Clone)]
pub struct MonitorChecker {
    spec: Arc<MonitorSpec>,
    general: GeneralLists,
    resource: ResourceState,
    order: OrderState,
    /// Highest event sequence number already processed by the
    /// real-time order checks, so checkpoint catch-up never
    /// double-reports.
    order_watermark: u64,
    last_check: Nanos,
}

impl MonitorChecker {
    fn new(monitor: MonitorId, spec: Arc<MonitorSpec>, initial: &MonitorState, now: Nanos) -> Self {
        let rmax = spec.capacity.unwrap_or(0);
        let available = initial.available.unwrap_or(rmax);
        MonitorChecker {
            general: GeneralLists::from_state(monitor, spec.cond_count(), initial, now),
            resource: ResourceState::new(monitor, rmax, available),
            order: OrderState::new(monitor, &spec),
            spec,
            order_watermark: 0,
            last_check: now,
        }
    }

    /// The monitor's declaration.
    pub fn spec(&self) -> &MonitorSpec {
        &self.spec
    }

    /// The replayed general checking lists (Algorithm-1 state).
    pub fn general(&self) -> &GeneralLists {
        &self.general
    }

    /// The replayed resource state (Algorithm-2 state).
    pub fn resource(&self) -> &ResourceState {
        &self.resource
    }

    /// The real-time order state (Algorithm-3 state).
    pub fn order(&self) -> &OrderState {
        &self.order
    }

    /// Time of the last completed checkpoint.
    pub fn last_check(&self) -> Nanos {
        self.last_check
    }
}

/// The run-time fault detector: the paper's periodically-invoked
/// checking routine plus the real-time calling-order checks.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::Detector;
/// use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, MonitorState, Nanos};
/// use rmon_core::{CondId, Pid};
/// use std::collections::HashMap;
/// use std::sync::Arc;
///
/// let bb = MonitorSpec::bounded_buffer("buf", 2);
/// let m = MonitorId::new(0);
/// let mut det = Detector::new(DetectorConfig::without_timeouts());
/// det.register(m, Arc::new(bb.spec.clone()), &MonitorState::with_resources(2, 2), Nanos::ZERO);
///
/// let events = vec![
///     Event::enter(1, Nanos::new(10), m, Pid::new(1), bb.send, true),
///     Event::signal_exit(2, Nanos::new(20), m, Pid::new(1), bb.send, Some(bb.empty_cond), false),
/// ];
/// let mut snaps = HashMap::new();
/// snaps.insert(m, MonitorState::with_resources(2, 1));
/// let report = det.checkpoint(Nanos::new(30), &events, &snaps);
/// assert!(report.is_clean(), "{report}");
/// ```
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: DetectorConfig,
    monitors: HashMap<MonitorId, MonitorChecker>,
}

impl Detector {
    /// Creates a detector with the given timing configuration.
    pub fn new(cfg: DetectorConfig) -> Self {
        Detector { cfg, monitors: HashMap::new() }
    }

    /// The timing configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Registers a monitor with its declaration and initial observed
    /// state. Events for unregistered monitors are ignored.
    pub fn register(
        &mut self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        self.monitors.insert(monitor, MonitorChecker::new(monitor, spec, initial, now));
    }

    /// Registers a monitor starting from the canonical empty state
    /// ([`MonitorSpec::empty_state`]).
    pub fn register_empty(&mut self, monitor: MonitorId, spec: Arc<MonitorSpec>, now: Nanos) {
        let initial = spec.empty_state();
        self.register(monitor, spec, &initial, now);
    }

    /// Whether a monitor is registered.
    pub fn is_registered(&self, monitor: MonitorId) -> bool {
        self.monitors.contains_key(&monitor)
    }

    /// Access to a monitor's incremental checking state.
    pub fn checker(&self, monitor: MonitorId) -> Option<&MonitorChecker> {
        self.monitors.get(&monitor)
    }

    /// Real-time observation of one event: runs the Algorithm-3 checks
    /// (duplicate request, release-without-request, declared call
    /// order) synchronously and returns any violations.
    ///
    /// The paper: *"Only the user process level faults should be
    /// detected during real time execution."* Call this from the data-
    /// gathering path; everything else waits for [`Self::checkpoint`].
    ///
    /// Dropping the return value silently discards detected faults, so
    /// it is `#[must_use]`; hot paths that want to avoid per-event
    /// allocation should use [`Self::observe_into`] with a reused
    /// buffer instead.
    #[must_use = "dropping the return value discards detected violations"]
    pub fn observe(&mut self, event: &Event) -> Vec<Violation> {
        let mut out = Vec::new();
        self.observe_into(event, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::observe`]: appends any
    /// violations to `out` and returns how many were added.
    ///
    /// The fast path — an unregistered monitor, or an event already
    /// covered by the Algorithm-3 watermark — touches no memory beyond
    /// the monitor lookup. Batch ingestion loops (the sharded service,
    /// the runtime recorder) call this with one reused buffer so the
    /// common no-violation case never allocates.
    pub fn observe_into(&mut self, event: &Event, out: &mut Vec<Violation>) -> usize {
        let Some(checker) = self.monitors.get_mut(&event.monitor) else {
            return 0;
        };
        if event.seq <= checker.order_watermark {
            return 0;
        }
        let before = out.len();
        checker.order.apply(&checker.spec, event, out);
        checker.order_watermark = event.seq;
        out.len() - before
    }

    /// Batched real-time observation: equivalent to calling
    /// [`Self::observe`] on every event in order, but with one output
    /// allocation for the whole batch. Returns the violations in event
    /// order.
    ///
    /// # Examples
    ///
    /// ```
    /// use rmon_core::detect::Detector;
    /// use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, Nanos, Pid};
    /// use std::sync::Arc;
    ///
    /// let al = MonitorSpec::allocator("res", 1);
    /// let m = MonitorId::new(0);
    /// let mut det = Detector::new(DetectorConfig::without_timeouts());
    /// det.register_empty(m, Arc::new(al.spec.clone()), Nanos::ZERO);
    ///
    /// let batch = vec![
    ///     Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true),
    ///     Event::enter(2, Nanos::new(20), m, Pid::new(1), al.request, false),
    /// ];
    /// // The duplicate request is flagged exactly as it would be
    /// // through two single-event observe() calls.
    /// let vs = det.observe_batch(&batch);
    /// assert!(!vs.is_empty());
    /// ```
    #[must_use = "dropping the return value discards detected violations"]
    pub fn observe_batch(&mut self, events: &[Event]) -> Vec<Violation> {
        let mut out = Vec::new();
        for event in events {
            self.observe_into(event, &mut out);
        }
        out
    }

    /// Non-mutating real-time lookahead: would an `Enter` of
    /// `proc_name` by `pid` violate a calling-order rule (ST-8) right
    /// now? Runtimes that *prevent* user-process faults (instead of
    /// merely reporting them) consult this before executing the call.
    ///
    /// Returns `None` for unregistered monitors.
    pub fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: crate::ids::Pid,
        proc_name: crate::ids::ProcName,
    ) -> Option<crate::rule::RuleId> {
        let checker = self.monitors.get(&monitor)?;
        checker.order.would_violate(&checker.spec, pid, proc_name)
    }

    /// Periodic checkpoint: replays `events` (the window since the last
    /// checkpoint, any monitor mix), compares each monitor's replayed
    /// lists against its observed snapshot, checks all timers, then
    /// re-bases the lists on the snapshots for the next window.
    ///
    /// Monitors without a snapshot entry keep their replayed lists
    /// (pure event-stream mode).
    pub fn checkpoint(
        &mut self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        let mut report = FaultReport {
            violations: Vec::new(),
            events_checked: 0,
            window_start: now,
            window_end: now,
        };
        for (&monitor, checker) in self.monitors.iter_mut() {
            if checker.last_check < report.window_start {
                report.window_start = checker.last_check;
            }
            // Algorithm-2 only applies to communication coordinators.
            let coordinator =
                checker.spec.class == crate::spec::MonitorClass::CommunicationCoordinator;
            let mut out = Vec::new();
            for event in events.iter().filter(|e| e.monitor == monitor) {
                report.events_checked += 1;
                // Algorithm-1 replay.
                checker.general.apply(&checker.spec, event, &mut out);
                // Algorithm-2 replay.
                if coordinator {
                    checker.resource.apply(&checker.spec, event, &mut out);
                }
                // Algorithm-3 catch-up for events not seen by observe().
                if event.seq > checker.order_watermark {
                    checker.order.apply(&checker.spec, event, &mut out);
                    checker.order_watermark = event.seq;
                }
            }
            // Step 2: snapshot comparison, user assertions and timers.
            if let Some(observed) = snapshots.get(&monitor) {
                checker.general.compare_snapshot(observed, now, &mut out);
                if coordinator {
                    checker.resource.compare_snapshot(observed, now, &mut out);
                }
                for assertion in &checker.spec.assertions {
                    assertion.check_into(monitor, observed, now, &mut out);
                }
            }
            checker.general.check_timers(&self.cfg, now, &mut out);
            checker.order.check_hold_timeout(&self.cfg, now, &mut out);
            // Re-base on the observed state for the next window.
            if let Some(observed) = snapshots.get(&monitor) {
                checker.general.resync(observed, now);
                if coordinator {
                    checker.resource.resync(observed);
                }
            }
            checker.last_check = now;
            report.violations.extend(out);
        }
        report.violations.sort_by_key(|v| (v.event_seq.unwrap_or(u64::MAX), v.rule));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::ids::{CondId, Pid, PidProc, ProcName};
    use crate::rule::RuleId;

    const M: MonitorId = MonitorId::new(0);

    fn detector_with_buffer(cap: u64) -> (Detector, crate::spec::BoundedBufferSpec) {
        let bb = MonitorSpec::bounded_buffer("buf", cap);
        let mut det = Detector::new(DetectorConfig::without_timeouts());
        det.register_empty(M, Arc::new(bb.spec.clone()), Nanos::ZERO);
        (det, bb)
    }

    fn detector_with_allocator(units: u64) -> (Detector, crate::spec::AllocatorSpec) {
        let al = MonitorSpec::allocator("res", units);
        let mut det = Detector::new(DetectorConfig::without_timeouts());
        det.register_empty(M, Arc::new(al.spec.clone()), Nanos::ZERO);
        (det, al)
    }

    #[test]
    fn register_empty_uses_spec_capacity() {
        let (det, _bb) = detector_with_buffer(3);
        assert!(det.is_registered(M));
        assert_eq!(det.checker(M).unwrap().resource().resource_no(), 3);
    }

    #[test]
    fn clean_producer_consumer_run_is_clean_across_checkpoints() {
        let (mut det, bb) = detector_with_buffer(2);
        let w1 = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::signal_exit(
                2,
                Nanos::new(20),
                M,
                Pid::new(1),
                bb.send,
                Some(bb.empty_cond),
                false,
            ),
        ];
        let mut snaps = HashMap::new();
        snaps.insert(M, MonitorState::with_resources(2, 1));
        let r1 = det.checkpoint(Nanos::new(30), &w1, &snaps);
        assert!(r1.is_clean(), "{r1}");
        assert_eq!(r1.events_checked, 2);

        let w2 = vec![
            Event::enter(3, Nanos::new(40), M, Pid::new(2), bb.receive, true),
            Event::signal_exit(
                4,
                Nanos::new(50),
                M,
                Pid::new(2),
                bb.receive,
                Some(bb.full_cond),
                false,
            ),
        ];
        snaps.insert(M, MonitorState::with_resources(2, 2));
        let r2 = det.checkpoint(Nanos::new(60), &w2, &snaps);
        assert!(r2.is_clean(), "{r2}");
    }

    #[test]
    fn observe_detects_release_without_request_in_real_time() {
        let (mut det, al) = detector_with_allocator(1);
        let e = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.release, true);
        let v = det.observe(&e);
        assert!(v.iter().any(|v| v.rule == RuleId::St8ReleaseWithoutRequest));
    }

    #[test]
    fn observe_batch_matches_single_event_observe() {
        let (mut det_single, al) = detector_with_allocator(1);
        let (mut det_batch, _) = detector_with_allocator(1);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), al.request, true),
            Event::enter(2, Nanos::new(20), M, Pid::new(1), al.request, false),
            Event::enter(3, Nanos::new(30), M, Pid::new(2), al.release, false),
        ];
        let mut singles = Vec::new();
        for e in &events {
            singles.extend(det_single.observe(e));
        }
        let batched = det_batch.observe_batch(&events);
        assert_eq!(singles, batched);
        assert!(!batched.is_empty());
    }

    #[test]
    fn observe_into_appends_and_reports_count() {
        let (mut det, al) = detector_with_allocator(1);
        let mut out = Vec::new();
        let ok = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.request, true);
        assert_eq!(det.observe_into(&ok, &mut out), 0);
        assert_eq!(out.capacity(), 0, "clean events must not allocate");
        let bad = Event::enter(2, Nanos::new(20), M, Pid::new(1), al.request, false);
        let n = det.observe_into(&bad, &mut out);
        assert!(n > 0);
        assert_eq!(out.len(), n);
        // Replaying the same seq is covered by the watermark fast path.
        assert_eq!(det.observe_into(&bad, &mut out), 0);
    }

    #[test]
    fn observe_into_ignores_unregistered_monitors() {
        let (mut det, al) = detector_with_allocator(1);
        let stray =
            Event::enter(1, Nanos::new(10), MonitorId::new(7), Pid::new(1), al.release, true);
        let mut out = Vec::new();
        assert_eq!(det.observe_into(&stray, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn checkpoint_does_not_double_report_observed_events() {
        let (mut det, al) = detector_with_allocator(1);
        let e = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.release, true);
        let v = det.observe(&e);
        assert_eq!(v.len(), 2, "ST-8b and ST-8* both fire: {v:?}");
        // The same event replayed at the checkpoint must not re-report
        // the order violations (Algorithm-1 does flag the bare exit).
        let snaps = HashMap::new();
        let report = det.checkpoint(Nanos::new(20), &[e], &snaps);
        assert!(
            !report.violates_any(&[RuleId::St8ReleaseWithoutRequest, RuleId::St8CallOrder]),
            "{report}"
        );
    }

    #[test]
    fn checkpoint_catches_up_order_checks_without_observe() {
        let (mut det, al) = detector_with_allocator(1);
        let e = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.release, true);
        let snaps = HashMap::new();
        let report = det.checkpoint(Nanos::new(20), &[e], &snaps);
        assert!(report.violates_any(&[RuleId::St8ReleaseWithoutRequest]), "{report}");
    }

    #[test]
    fn lost_process_detected_via_snapshot_then_engine_resyncs() {
        let (mut det, bb) = detector_with_buffer(2);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::enter(2, Nanos::new(11), M, Pid::new(2), bb.receive, false),
        ];
        // Snapshot lost P2 entirely.
        let mut snaps = HashMap::new();
        let mut obs = MonitorState::with_resources(2, 2);
        obs.running.push(PidProc::new(Pid::new(1), bb.send));
        snaps.insert(M, obs.clone());
        let r1 = det.checkpoint(Nanos::new(30), &events, &snaps);
        assert!(r1.violates_any(&[RuleId::St1EntrySnapshot]), "{r1}");
        // After resync the same snapshot is consistent.
        let r2 = det.checkpoint(Nanos::new(40), &[], &snaps);
        assert!(r2.is_clean(), "{r2}");
    }

    #[test]
    fn starvation_accumulates_across_checkpoints() {
        let bb = MonitorSpec::bounded_buffer("buf", 2);
        let cfg = DetectorConfig::builder()
            .t_io(Nanos::from_millis(50))
            .t_max(Nanos::from_secs(100))
            .t_limit(Nanos::from_secs(100))
            .build();
        let mut det = Detector::new(cfg);
        det.register_empty(M, Arc::new(bb.spec.clone()), Nanos::ZERO);

        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::enter(2, Nanos::new(20), M, Pid::new(2), bb.receive, false),
        ];
        let mut obs = MonitorState::with_resources(2, 2);
        obs.running.push(PidProc::new(Pid::new(1), bb.send));
        obs.entry_queue.push(PidProc::new(Pid::new(2), bb.receive));
        let mut snaps = HashMap::new();
        snaps.insert(M, obs);

        // First checkpoint at 30 ms: P2 has waited < Tio.
        let r1 = det.checkpoint(Nanos::from_millis(30), &events, &snaps);
        assert!(!r1.violates_any(&[RuleId::St6EntryTimeout]), "{r1}");
        // Second checkpoint at 100 ms: same snapshot, the timer carried
        // over and has now exceeded Tio.
        let r2 = det.checkpoint(Nanos::from_millis(100), &[], &snaps);
        assert!(r2.violates_any(&[RuleId::St6EntryTimeout]), "{r2}");
    }

    #[test]
    fn events_for_unregistered_monitors_are_ignored() {
        let (mut det, bb) = detector_with_buffer(2);
        let stray = Event::enter(1, Nanos::new(10), MonitorId::new(9), Pid::new(1), bb.send, true);
        let report = det.checkpoint(Nanos::new(20), &[stray], &HashMap::new());
        assert!(report.is_clean());
        assert_eq!(report.events_checked, 0);
    }

    #[test]
    fn report_violations_are_sorted_by_event() {
        let (mut det, bb) = detector_with_buffer(2);
        let events = vec![
            // Exit without enter (seq 1), then double grant (seq 2, 3).
            Event::signal_exit(
                1,
                Nanos::new(10),
                M,
                Pid::new(3),
                bb.send,
                Some(bb.empty_cond),
                false,
            ),
            Event::enter(2, Nanos::new(20), M, Pid::new(1), bb.send, true),
            Event::enter(3, Nanos::new(30), M, Pid::new(2), bb.send, true),
        ];
        let report = det.checkpoint(Nanos::new(40), &events, &HashMap::new());
        let seqs: Vec<_> = report.violations.iter().map(|v| v.event_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort();
        assert_eq!(seqs, sorted, "{report}");
        assert!(report.violates_any(&[RuleId::St3RunningIsCaller]));
        assert!(report.violates_any(&[RuleId::St3RunningUnique]));
    }

    #[test]
    fn double_acquire_diagnosed_with_fault_class() {
        let (mut det, al) = detector_with_allocator(1);
        let e1 = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.request, true);
        let e2 = Event::enter(2, Nanos::new(20), M, Pid::new(1), al.request, false);
        assert!(det.observe(&e1).is_empty());
        let v = det.observe(&e2);
        assert!(v.iter().any(|x| x.fault == Some(FaultKind::DoubleAcquire)), "{v:?}");
    }

    #[test]
    fn condid_payloads_survive_engine_paths() {
        // Regression guard: signalling an out-of-range condition id must
        // not panic the engine.
        let (mut det, bb) = detector_with_buffer(1);
        let e = Event::signal_exit(
            1,
            Nanos::new(5),
            M,
            Pid::new(1),
            bb.send,
            Some(CondId::new(40)),
            true,
        );
        let report = det.checkpoint(Nanos::new(10), &[e], &HashMap::new());
        assert!(!report.is_clean());
    }

    #[test]
    fn proc_name_out_of_range_does_not_panic() {
        let (mut det, _bb) = detector_with_buffer(1);
        let e = Event::enter(1, Nanos::new(5), M, Pid::new(1), ProcName::new(99), true);
        let report = det.checkpoint(Nanos::new(10), &[e], &HashMap::new());
        // Entering and never leaving is not itself an ST-1..4 violation
        // without a snapshot; just ensure no panic and bookkeeping ran.
        assert_eq!(report.events_checked, 1);
    }
}
