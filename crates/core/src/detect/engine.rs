//! The incremental detector engine.
//!
//! The paper's prototype (§4) couples a *data-gathering routine* (runs
//! in real time, invoked by the three monitor primitives) with a
//! *checking routine* (invoked periodically every `T`). [`Detector`]
//! is the checking routine: it owns per-monitor checking lists that are
//! carried from one checking window to the next, exactly as §3.3
//! prescribes — *"only the states at the last checking time and the
//! current checking time are recorded; the state sequence in between is
//! not needed"*.
//!
//! Real-time user-process-level checks (Algorithm-3) run in
//! [`Detector::observe`], which the recording layer calls as each event
//! is gathered; periodic checks (Algorithms 1 and 2 plus the timers)
//! run in [`Detector::checkpoint`].

use crate::config::DetectorConfig;
use crate::detect::predict;
use crate::event::Event;
use crate::ids::{MonitorId, Pid};
use crate::lists::{GeneralLists, OrderState, ResourceState};
use crate::spec::MonitorSpec;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::{FaultReport, Violation};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-monitor incremental checking state.
#[derive(Debug, Clone)]
pub struct MonitorChecker {
    spec: Arc<MonitorSpec>,
    general: GeneralLists,
    resource: ResourceState,
    order: OrderState,
    /// Per-caller high-water marks of event sequence numbers already
    /// ingested (order-checked in real time, and queued in [`pending`]
    /// or replayed through Algorithms 1–2), so neither the real-time
    /// path nor checkpoint catch-up ever double-processes an event.
    ///
    /// The marks are per-[`Pid`] rather than per-monitor because the
    /// Algorithm-3 state ([`OrderState`]) is itself keyed by caller:
    /// events of *different* pids commute, so ingestion only has to
    /// keep each pid's events in order — which is exactly what a
    /// per-thread [`crate::detect::ProducerHandle`] guarantees — while
    /// batches from different producers may interleave freely.
    ///
    /// [`pending`]: MonitorChecker::pending_events
    order_marks: HashMap<Pid, u64>,
    /// Events ingested in real time but not yet replayed through the
    /// periodic Algorithms 1–2: the window a *scoped* checkpoint
    /// ([`Detector::checkpoint_scoped`]) replays when no explicit event
    /// window is supplied. Consumed (and deduplicated against any
    /// explicit window by `seq`) at every checkpoint — like the
    /// recorded window itself, it grows with the stream until a
    /// checkpoint drains it, so run one periodically
    /// ([`Detector::checkpoint_timers`] deliberately leaves it alone).
    pending: Vec<Event>,
    /// Distinct events replayed through Algorithms 1–2 so far — the
    /// engine side of the snapshot consistency gate (see
    /// [`Detector::checkpoint_scoped`]).
    replayed: u64,
    last_check: Nanos,
}

impl MonitorChecker {
    fn new(monitor: MonitorId, spec: Arc<MonitorSpec>, initial: &MonitorState, now: Nanos) -> Self {
        let rmax = spec.capacity.unwrap_or(0);
        let available = initial.available.unwrap_or(rmax);
        MonitorChecker {
            general: GeneralLists::from_state(monitor, spec.cond_count(), initial, now),
            resource: ResourceState::new(monitor, rmax, available),
            order: OrderState::new(monitor, &spec),
            spec,
            order_marks: HashMap::new(),
            pending: Vec::new(),
            replayed: 0,
            last_check: now,
        }
    }

    /// The monitor's declaration.
    pub fn spec(&self) -> &MonitorSpec {
        &self.spec
    }

    /// The replayed general checking lists (Algorithm-1 state).
    pub fn general(&self) -> &GeneralLists {
        &self.general
    }

    /// The replayed resource state (Algorithm-2 state).
    pub fn resource(&self) -> &ResourceState {
        &self.resource
    }

    /// The real-time order state (Algorithm-3 state).
    pub fn order(&self) -> &OrderState {
        &self.order
    }

    /// Time of the last completed checkpoint.
    pub fn last_check(&self) -> Nanos {
        self.last_check
    }

    /// Events ingested but not yet replayed through Algorithms 1–2
    /// (the window the next scoped checkpoint will consume).
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Distinct events replayed through Algorithms 1–2 so far.
    pub fn replayed_events(&self) -> u64 {
        self.replayed
    }
}

/// The run-time fault detector: the paper's periodically-invoked
/// checking routine plus the real-time calling-order checks.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::Detector;
/// use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, MonitorState, Nanos};
/// use rmon_core::{CondId, Pid};
/// use std::collections::HashMap;
/// use std::sync::Arc;
///
/// let bb = MonitorSpec::bounded_buffer("buf", 2);
/// let m = MonitorId::new(0);
/// let mut det = Detector::new(DetectorConfig::without_timeouts());
/// det.register(m, Arc::new(bb.spec.clone()), &MonitorState::with_resources(2, 2), Nanos::ZERO);
///
/// let events = vec![
///     Event::enter(1, Nanos::new(10), m, Pid::new(1), bb.send, true),
///     Event::signal_exit(2, Nanos::new(20), m, Pid::new(1), bb.send, Some(bb.empty_cond), false),
/// ];
/// let mut snaps = HashMap::new();
/// snaps.insert(m, MonitorState::with_resources(2, 1));
/// let report = det.checkpoint(Nanos::new(30), &events, &snaps);
/// assert!(report.is_clean(), "{report}");
/// ```
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: DetectorConfig,
    monitors: HashMap<MonitorId, MonitorChecker>,
}

impl Detector {
    /// Creates a detector with the given timing configuration.
    pub fn new(cfg: DetectorConfig) -> Self {
        Detector { cfg, monitors: HashMap::new() }
    }

    /// The timing configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Registers a monitor with its declaration and initial observed
    /// state. Events for unregistered monitors are ignored.
    ///
    /// Every backend (inline, sharded, scheduled, async, remote) routes
    /// registration through here, so this is also where the
    /// [`DetectorConfig::strict_specs`] gate lives.
    ///
    /// # Panics
    ///
    /// With `strict_specs` on, panics if the spec has Error-level
    /// static diagnostics ([`crate::spec::analyze`]); use
    /// [`Detector::try_register`] to handle the report instead.
    pub fn register(
        &mut self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        if self.cfg.strict_specs {
            let report = crate::spec::analyze::analyze(&spec);
            assert!(
                !report.has_errors(),
                "strict_specs: registration of {:?} rejected:\n{report}",
                spec.name
            );
        }
        self.monitors.insert(monitor, MonitorChecker::new(monitor, spec, initial, now));
    }

    /// Like [`Detector::register`], but always vets the spec through
    /// the static analyzer first — regardless of
    /// [`DetectorConfig::strict_specs`] — and refuses Error-level
    /// declarations instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the full [`LintReport`](crate::spec::LintReport)
    /// (which may additionally carry Warn/Lint findings) when the spec
    /// has Error-level diagnostics; the monitor is not registered.
    pub fn try_register(
        &mut self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) -> Result<(), crate::spec::LintReport> {
        let report = crate::spec::analyze::analyze(&spec);
        if report.has_errors() {
            return Err(report);
        }
        self.monitors.insert(monitor, MonitorChecker::new(monitor, spec, initial, now));
        Ok(())
    }

    /// Registers a monitor starting from the canonical empty state
    /// ([`MonitorSpec::empty_state`]).
    pub fn register_empty(&mut self, monitor: MonitorId, spec: Arc<MonitorSpec>, now: Nanos) {
        let initial = spec.empty_state();
        self.register(monitor, spec, &initial, now);
    }

    /// Whether a monitor is registered.
    pub fn is_registered(&self, monitor: MonitorId) -> bool {
        self.monitors.contains_key(&monitor)
    }

    /// Access to a monitor's incremental checking state.
    pub fn checker(&self, monitor: MonitorId) -> Option<&MonitorChecker> {
        self.monitors.get(&monitor)
    }

    /// The registered monitors, in no particular order.
    pub fn monitor_ids(&self) -> Vec<MonitorId> {
        self.monitors.keys().copied().collect()
    }

    /// Total events queued in the pending replay windows across all
    /// monitors — the quantity a periodic checkpoint drains (timer-only
    /// sweeps use it as their memory-backstop trigger).
    pub fn pending_total(&self) -> usize {
        self.monitors.values().map(|c| c.pending.len()).sum()
    }

    /// Real-time observation of one event: runs the Algorithm-3 checks
    /// (duplicate request, release-without-request, declared call
    /// order) synchronously and returns any violations.
    ///
    /// The paper: *"Only the user process level faults should be
    /// detected during real time execution."* Call this from the data-
    /// gathering path; everything else waits for [`Self::checkpoint`].
    ///
    /// Dropping the return value silently discards detected faults, so
    /// it is `#[must_use]`; hot paths that want to avoid per-event
    /// allocation should use [`Self::observe_into`] with a reused
    /// buffer instead.
    #[must_use = "dropping the return value discards detected violations"]
    pub fn observe(&mut self, event: &Event) -> Vec<Violation> {
        let mut out = Vec::new();
        self.observe_into(event, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::observe`]: appends any
    /// violations to `out` and returns how many were added.
    ///
    /// The fast path — an unregistered monitor, or an event already
    /// covered by its caller's watermark — touches no memory beyond the
    /// lookups, and a fresh event costs one (amortized) append to the
    /// monitor's pending replay window on top of the order checks.
    /// Batch ingestion loops (the sharded service, the runtime
    /// recorder) call this with one reused buffer so the common
    /// no-violation case never allocates an output.
    ///
    /// Events of one [`Pid`] must arrive in `seq` order; events of
    /// different pids may interleave arbitrarily (the order state is
    /// per-caller, see [`MonitorChecker`]). An event at or below its
    /// pid's watermark is skipped — it was already checked, either here
    /// or by a checkpoint's catch-up replay. A fresh event is also
    /// queued for the next checkpoint's Algorithm-1/2 replay (see
    /// [`Self::checkpoint_scoped`]); checkpoints that receive an
    /// explicit window deduplicate the overlap by `seq`.
    pub fn observe_into(&mut self, event: &Event, out: &mut Vec<Violation>) -> usize {
        let Some(checker) = self.monitors.get_mut(&event.monitor) else {
            return 0;
        };
        let mark = checker.order_marks.entry(event.pid).or_insert(0);
        if event.seq <= *mark {
            return 0;
        }
        *mark = event.seq;
        checker.pending.push(*event);
        let before = out.len();
        checker.order.apply(&checker.spec, event, out);
        if matches!(event.kind, crate::event::EventKind::Terminate) {
            // Free the caller's call-order state so long-running
            // detectors don't accumulate NFA state for every process
            // that ever called. Stragglers (older events still buffered
            // in a producer handle) are blocked by the watermark above;
            // a caller that *resumes* after recovery (terminate_inside
            // leaves the thread alive) produces higher-seq events and
            // is checked again from fresh order state — its retained
            // Request-List entry still flags a duplicate request or
            // clears on the eventual release.
            checker.order.forget_caller(event.pid);
        }
        out.len() - before
    }

    /// Batched real-time observation: equivalent to calling
    /// [`Self::observe`] on every event in order, but with one output
    /// allocation for the whole batch. Returns the violations in event
    /// order.
    ///
    /// # Examples
    ///
    /// ```
    /// use rmon_core::detect::Detector;
    /// use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, Nanos, Pid};
    /// use std::sync::Arc;
    ///
    /// let al = MonitorSpec::allocator("res", 1);
    /// let m = MonitorId::new(0);
    /// let mut det = Detector::new(DetectorConfig::without_timeouts());
    /// det.register_empty(m, Arc::new(al.spec.clone()), Nanos::ZERO);
    ///
    /// let batch = vec![
    ///     Event::enter(1, Nanos::new(10), m, Pid::new(1), al.request, true),
    ///     Event::enter(2, Nanos::new(20), m, Pid::new(1), al.request, false),
    /// ];
    /// // The duplicate request is flagged exactly as it would be
    /// // through two single-event observe() calls.
    /// let vs = det.observe_batch(&batch);
    /// assert!(!vs.is_empty());
    /// ```
    #[must_use = "dropping the return value discards detected violations"]
    pub fn observe_batch(&mut self, events: &[Event]) -> Vec<Violation> {
        let mut out = Vec::new();
        for event in events {
            self.observe_into(event, &mut out);
        }
        out
    }

    /// Non-mutating real-time lookahead: would an `Enter` of
    /// `proc_name` by `pid` violate a calling-order rule (ST-8) right
    /// now? Runtimes that *prevent* user-process faults (instead of
    /// merely reporting them) consult this before executing the call.
    ///
    /// Returns `None` for unregistered monitors.
    pub fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: crate::ids::Pid,
        proc_name: crate::ids::ProcName,
    ) -> Option<crate::rule::RuleId> {
        let checker = self.monitors.get(&monitor)?;
        checker.order.would_violate(&checker.spec, pid, proc_name)
    }

    /// Periodic checkpoint: replays `events` (the window since the last
    /// checkpoint, any monitor mix) merged with each monitor's pending
    /// real-time window (deduplicated by `seq` and per-caller
    /// watermark), compares each monitor's replayed lists against its
    /// observed snapshot, checks all timers, then re-bases the lists on
    /// the snapshots for the next window.
    ///
    /// Monitors without a snapshot entry keep their replayed lists
    /// (pure event-stream mode).
    pub fn checkpoint(
        &mut self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        self.checkpoint_inner(now, events, snapshots, &HashMap::new(), None)
    }

    /// Scoped checkpoint: the window-less form behind
    /// [`crate::detect::DetectionBackend::checkpoint`]. Replays each
    /// in-scope monitor's **pending** real-time window (the events
    /// ingested through [`Self::observe_into`] since the last
    /// checkpoint) through Algorithms 1–2, compares against the
    /// supplied snapshots, checks the timers, and re-bases — without
    /// the caller having to drain and partition a recorded window.
    ///
    /// `only` restricts the checkpoint to one monitor (the
    /// [`crate::detect::CheckpointScope::Monitor`] case); `None` checks
    /// every registered monitor.
    ///
    /// `gates` is the snapshot **consistency gate** for asynchronous
    /// callers: an entry `(monitor, n)` asserts that the monitor's
    /// snapshot was taken after exactly `n` events had been recorded
    /// for it. The comparison (and the resync it would imply) runs only
    /// when the engine has replayed exactly `n` events for that monitor
    /// — otherwise events are still in flight (buffered in a producer
    /// handle or a shard inbox, or never streamed at all) and comparing
    /// a lagging replay against a newer observation would fabricate
    /// mismatches. Gated-out monitors still get their pending replay
    /// and timer checks; the snapshot comparison simply waits for a
    /// quiescent sweep. Monitors without a gate entry are compared
    /// unconditionally (the trusted-fixture case: the caller knows the
    /// snapshot matches what was ingested).
    pub fn checkpoint_scoped(
        &mut self,
        now: Nanos,
        snapshots: &HashMap<MonitorId, MonitorState>,
        gates: &HashMap<MonitorId, u64>,
        only: Option<MonitorId>,
    ) -> FaultReport {
        self.checkpoint_inner(now, &[], snapshots, gates, only)
    }

    /// Timer-only checkpoint: checks the non-termination, starvation
    /// and hold-limit timers of the in-scope monitors without replaying
    /// any events or touching the pending windows — the shape of a
    /// scheduler sweep with no snapshot provider registered.
    pub fn checkpoint_timers(&mut self, now: Nanos, only: Option<MonitorId>) -> FaultReport {
        let mut report = FaultReport {
            violations: Vec::new(),
            predicted: Vec::new(),
            events_checked: 0,
            window_start: now,
            window_end: now,
        };
        for (&monitor, checker) in self.monitors.iter_mut() {
            if only.is_some_and(|m| m != monitor) {
                continue;
            }
            if checker.last_check < report.window_start {
                report.window_start = checker.last_check;
            }
            checker.general.check_timers(&self.cfg, now, &mut report.violations);
            checker.order.check_hold_timeout(&self.cfg, now, &mut report.violations);
            checker.last_check = now;
        }
        report.sort_canonical();
        report
    }

    fn checkpoint_inner(
        &mut self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
        gates: &HashMap<MonitorId, u64>,
        only: Option<MonitorId>,
    ) -> FaultReport {
        let mut report = FaultReport {
            violations: Vec::new(),
            predicted: Vec::new(),
            events_checked: 0,
            window_start: now,
            window_end: now,
        };
        let predict_on = self.cfg.predict.is_on();
        let mut predict_windows: Vec<(MonitorId, Vec<Event>)> = Vec::new();
        for (&monitor, checker) in self.monitors.iter_mut() {
            if only.is_some_and(|m| m != monitor) {
                continue;
            }
            if checker.last_check < report.window_start {
                report.window_start = checker.last_check;
            }
            // Algorithm-2 only applies to communication coordinators.
            let coordinator =
                checker.spec.class == crate::spec::MonitorClass::CommunicationCoordinator;
            // Violations accumulate straight into the report (sorted
            // once at the end) — no per-monitor scratch allocation.
            let out = &mut report.violations;
            // The replay window: the monitor's pending real-time events
            // plus whatever the explicit window adds. Watermarks make
            // the union exact — an explicit-window event at or below
            // its caller's mark is either already replayed (skip) or
            // sitting in `pending` (counted once from there), so the
            // merged window holds every outstanding event exactly once.
            let mut merged = std::mem::take(&mut checker.pending);
            for event in events.iter().filter(|e| e.monitor == monitor) {
                let mark = checker.order_marks.entry(event.pid).or_insert(0);
                if event.seq > *mark {
                    *mark = event.seq;
                    // Algorithm-3 catch-up for events that never passed
                    // through observe() (e.g. monitors that do not
                    // stream in real time). Terminate frees the
                    // caller's order state — see observe_into.
                    checker.order.apply(&checker.spec, event, out);
                    if matches!(event.kind, crate::event::EventKind::Terminate) {
                        checker.order.forget_caller(event.pid);
                    }
                    merged.push(*event);
                }
            }
            // Restore the one total order <L within the monitor: pended
            // batches from concurrent producers and the explicit window
            // may interleave, but `seq` is globally unique and assigned
            // in real order.
            merged.sort_unstable_by_key(|e| e.seq);
            for event in &merged {
                report.events_checked += 1;
                // Algorithm-1 replay.
                checker.general.apply(&checker.spec, event, out);
                // Algorithm-2 replay.
                if coordinator {
                    checker.resource.apply(&checker.spec, event, out);
                }
            }
            checker.replayed += merged.len() as u64;
            // The predictive pass works over the whole checkpoint's
            // windows at once (cross-monitor happens-before edges), so
            // park this monitor's window until the loop is done.
            if predict_on && !merged.is_empty() {
                predict_windows.push((monitor, std::mem::take(&mut merged)));
            }
            // Step 2: snapshot comparison, user assertions and timers.
            // The consistency gate (see checkpoint_scoped) may defer
            // the comparison to a later, quiescent sweep.
            let gate_open = gates.get(&monitor).is_none_or(|&want| want == checker.replayed);
            if let Some(observed) = snapshots.get(&monitor).filter(|_| gate_open) {
                checker.general.compare_snapshot(observed, now, out);
                if coordinator {
                    checker.resource.compare_snapshot(observed, now, out);
                }
                for assertion in &checker.spec.assertions {
                    assertion.check_into(monitor, observed, now, out);
                }
            }
            checker.general.check_timers(&self.cfg, now, out);
            checker.order.check_hold_timeout(&self.cfg, now, out);
            // Re-base on the observed state for the next window.
            if let Some(observed) = snapshots.get(&monitor).filter(|_| gate_open) {
                checker.general.resync(observed, now);
                if coordinator {
                    checker.resource.resync(observed);
                }
            }
            checker.last_check = now;
        }
        if predict_on && !predict_windows.is_empty() {
            let annotation = predict::Annotation::over(&predict_windows);
            for (monitor, window) in &predict_windows {
                if let Some(checker) = self.monitors.get(monitor) {
                    predict::predict_window(
                        *monitor,
                        &checker.spec,
                        &self.cfg,
                        window,
                        &annotation,
                        now,
                        &mut report.predicted,
                    );
                }
            }
        }
        report.sort_canonical();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::ids::{CondId, Pid, PidProc, ProcName};
    use crate::rule::RuleId;

    const M: MonitorId = MonitorId::new(0);

    fn detector_with_buffer(cap: u64) -> (Detector, crate::spec::BoundedBufferSpec) {
        let bb = MonitorSpec::bounded_buffer("buf", cap);
        let mut det = Detector::new(DetectorConfig::without_timeouts());
        det.register_empty(M, Arc::new(bb.spec.clone()), Nanos::ZERO);
        (det, bb)
    }

    fn detector_with_allocator(units: u64) -> (Detector, crate::spec::AllocatorSpec) {
        let al = MonitorSpec::allocator("res", units);
        let mut det = Detector::new(DetectorConfig::without_timeouts());
        det.register_empty(M, Arc::new(al.spec.clone()), Nanos::ZERO);
        (det, al)
    }

    #[test]
    fn register_empty_uses_spec_capacity() {
        let (det, _bb) = detector_with_buffer(3);
        assert!(det.is_registered(M));
        assert_eq!(det.checker(M).unwrap().resource().resource_no(), 3);
    }

    #[test]
    fn clean_producer_consumer_run_is_clean_across_checkpoints() {
        let (mut det, bb) = detector_with_buffer(2);
        let w1 = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::signal_exit(
                2,
                Nanos::new(20),
                M,
                Pid::new(1),
                bb.send,
                Some(bb.empty_cond),
                false,
            ),
        ];
        let mut snaps = HashMap::new();
        snaps.insert(M, MonitorState::with_resources(2, 1));
        let r1 = det.checkpoint(Nanos::new(30), &w1, &snaps);
        assert!(r1.is_clean(), "{r1}");
        assert_eq!(r1.events_checked, 2);

        let w2 = vec![
            Event::enter(3, Nanos::new(40), M, Pid::new(2), bb.receive, true),
            Event::signal_exit(
                4,
                Nanos::new(50),
                M,
                Pid::new(2),
                bb.receive,
                Some(bb.full_cond),
                false,
            ),
        ];
        snaps.insert(M, MonitorState::with_resources(2, 2));
        let r2 = det.checkpoint(Nanos::new(60), &w2, &snaps);
        assert!(r2.is_clean(), "{r2}");
    }

    #[test]
    fn observe_detects_release_without_request_in_real_time() {
        let (mut det, al) = detector_with_allocator(1);
        let e = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.release, true);
        let v = det.observe(&e);
        assert!(v.iter().any(|v| v.rule == RuleId::St8ReleaseWithoutRequest));
    }

    #[test]
    fn observe_batch_matches_single_event_observe() {
        let (mut det_single, al) = detector_with_allocator(1);
        let (mut det_batch, _) = detector_with_allocator(1);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), al.request, true),
            Event::enter(2, Nanos::new(20), M, Pid::new(1), al.request, false),
            Event::enter(3, Nanos::new(30), M, Pid::new(2), al.release, false),
        ];
        let mut singles = Vec::new();
        for e in &events {
            singles.extend(det_single.observe(e));
        }
        let batched = det_batch.observe_batch(&events);
        assert_eq!(singles, batched);
        assert!(!batched.is_empty());
    }

    #[test]
    fn observe_into_appends_and_reports_count() {
        let (mut det, al) = detector_with_allocator(1);
        let mut out = Vec::new();
        let ok = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.request, true);
        assert_eq!(det.observe_into(&ok, &mut out), 0);
        assert_eq!(out.capacity(), 0, "clean events must not allocate");
        let bad = Event::enter(2, Nanos::new(20), M, Pid::new(1), al.request, false);
        let n = det.observe_into(&bad, &mut out);
        assert!(n > 0);
        assert_eq!(out.len(), n);
        // Replaying the same seq is covered by the watermark fast path.
        assert_eq!(det.observe_into(&bad, &mut out), 0);
    }

    #[test]
    fn cross_pid_reorder_does_not_lose_order_checks() {
        // Two callers' streams interleaved out of global seq order —
        // the shape two producer handles flushing at different times
        // produce. Per-pid order is preserved, so every per-pid check
        // must still fire exactly as in the globally ordered replay.
        let (mut det_global, al) = detector_with_allocator(2);
        let (mut det_reordered, _) = detector_with_allocator(2);
        let e = |seq: u64, pid: u32, proc_name| {
            Event::enter(seq, Nanos::new(seq * 10), M, Pid::new(pid), proc_name, false)
        };
        // pid 1: request (seq 1), duplicate request (seq 3).
        // pid 2: release without request (seq 2), request (seq 4).
        let global = vec![
            e(1, 1, al.request),
            e(2, 2, al.release),
            e(3, 1, al.request),
            e(4, 2, al.request),
        ];
        let reordered = vec![global[1], global[3], global[0], global[2]];
        let key = |v: &Violation| (v.pid, v.event_seq, v.rule);
        let mut want = det_global.observe_batch(&global);
        let mut got = det_reordered.observe_batch(&reordered);
        want.sort_by_key(key);
        got.sort_by_key(key);
        assert_eq!(got, want);
        // Each faulty call fires its specific rule plus the declared
        // call-order rule.
        assert_eq!(want.len(), 4, "{want:?}");
        // Checkpoint catch-up must not double-report any of them.
        let r = det_reordered.checkpoint(Nanos::new(50), &global, &HashMap::new());
        assert!(
            !r.violates_any(&[RuleId::St8DuplicateRequest, RuleId::St8ReleaseWithoutRequest]),
            "{r}"
        );
    }

    #[test]
    fn terminate_frees_order_state_but_keeps_checking_a_resumed_caller() {
        let (mut det, al) = detector_with_allocator(2);
        let req = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.request, true);
        assert!(det.observe(&req).is_empty());
        let term = Event::terminate(3, Nanos::new(30), M, Pid::new(1), al.request);
        assert!(det.observe(&term).is_empty());
        // A straggler (an event seq'd before the terminate, arriving
        // late from a buffered batch) is dropped by the watermark, not
        // re-applied to freshly reset state.
        let straggler = Event::enter(2, Nanos::new(20), M, Pid::new(1), al.request, false);
        let mut out = Vec::new();
        assert_eq!(det.observe_into(&straggler, &mut out), 0);
        assert!(out.is_empty());
        // The Request-List survives the termination: the crashed holder
        // must keep tripping the ST-8c hold timer.
        assert!(det
            .checker(M)
            .unwrap()
            .order()
            .request_list()
            .iter()
            .any(|(p, _)| *p == Pid::new(1)));
        // A caller that *resumes* after recovery (terminate_inside
        // leaves the thread alive) is still checked: it still holds
        // the right, so a fresh request is a duplicate…
        let resumed = Event::enter(4, Nanos::new(40), M, Pid::new(1), al.request, false);
        let vs = det.observe(&resumed);
        assert!(vs.iter().any(|v| v.rule == RuleId::St8DuplicateRequest), "{vs:?}");
        // …and the eventual release clears the hold.
        let rel_enter = Event::enter(5, Nanos::new(50), M, Pid::new(1), al.release, true);
        let _ = det.observe(&rel_enter);
        let rel_exit =
            Event::signal_exit(6, Nanos::new(60), M, Pid::new(1), al.release, None, false);
        assert!(det.observe(&rel_exit).is_empty());
        assert!(det.checker(M).unwrap().order().request_list().is_empty());
    }

    #[test]
    fn observe_into_ignores_unregistered_monitors() {
        let (mut det, al) = detector_with_allocator(1);
        let stray =
            Event::enter(1, Nanos::new(10), MonitorId::new(7), Pid::new(1), al.release, true);
        let mut out = Vec::new();
        assert_eq!(det.observe_into(&stray, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn checkpoint_does_not_double_report_observed_events() {
        let (mut det, al) = detector_with_allocator(1);
        let e = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.release, true);
        let v = det.observe(&e);
        assert_eq!(v.len(), 2, "ST-8b and ST-8* both fire: {v:?}");
        // The same event replayed at the checkpoint must not re-report
        // the order violations (Algorithm-1 does flag the bare exit).
        let snaps = HashMap::new();
        let report = det.checkpoint(Nanos::new(20), &[e], &snaps);
        assert!(
            !report.violates_any(&[RuleId::St8ReleaseWithoutRequest, RuleId::St8CallOrder]),
            "{report}"
        );
    }

    #[test]
    fn checkpoint_catches_up_order_checks_without_observe() {
        let (mut det, al) = detector_with_allocator(1);
        let e = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.release, true);
        let snaps = HashMap::new();
        let report = det.checkpoint(Nanos::new(20), &[e], &snaps);
        assert!(report.violates_any(&[RuleId::St8ReleaseWithoutRequest]), "{report}");
    }

    #[test]
    fn lost_process_detected_via_snapshot_then_engine_resyncs() {
        let (mut det, bb) = detector_with_buffer(2);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::enter(2, Nanos::new(11), M, Pid::new(2), bb.receive, false),
        ];
        // Snapshot lost P2 entirely.
        let mut snaps = HashMap::new();
        let mut obs = MonitorState::with_resources(2, 2);
        obs.running.push(PidProc::new(Pid::new(1), bb.send));
        snaps.insert(M, obs.clone());
        let r1 = det.checkpoint(Nanos::new(30), &events, &snaps);
        assert!(r1.violates_any(&[RuleId::St1EntrySnapshot]), "{r1}");
        // After resync the same snapshot is consistent.
        let r2 = det.checkpoint(Nanos::new(40), &[], &snaps);
        assert!(r2.is_clean(), "{r2}");
    }

    #[test]
    fn starvation_accumulates_across_checkpoints() {
        let bb = MonitorSpec::bounded_buffer("buf", 2);
        let cfg = DetectorConfig::builder()
            .t_io(Nanos::from_millis(50))
            .t_max(Nanos::from_secs(100))
            .t_limit(Nanos::from_secs(100))
            .build();
        let mut det = Detector::new(cfg);
        det.register_empty(M, Arc::new(bb.spec.clone()), Nanos::ZERO);

        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::enter(2, Nanos::new(20), M, Pid::new(2), bb.receive, false),
        ];
        let mut obs = MonitorState::with_resources(2, 2);
        obs.running.push(PidProc::new(Pid::new(1), bb.send));
        obs.entry_queue.push(PidProc::new(Pid::new(2), bb.receive));
        let mut snaps = HashMap::new();
        snaps.insert(M, obs);

        // First checkpoint at 30 ms: P2 has waited < Tio.
        let r1 = det.checkpoint(Nanos::from_millis(30), &events, &snaps);
        assert!(!r1.violates_any(&[RuleId::St6EntryTimeout]), "{r1}");
        // Second checkpoint at 100 ms: same snapshot, the timer carried
        // over and has now exceeded Tio.
        let r2 = det.checkpoint(Nanos::from_millis(100), &[], &snaps);
        assert!(r2.violates_any(&[RuleId::St6EntryTimeout]), "{r2}");
    }

    #[test]
    fn events_for_unregistered_monitors_are_ignored() {
        let (mut det, bb) = detector_with_buffer(2);
        let stray = Event::enter(1, Nanos::new(10), MonitorId::new(9), Pid::new(1), bb.send, true);
        let report = det.checkpoint(Nanos::new(20), &[stray], &HashMap::new());
        assert!(report.is_clean());
        assert_eq!(report.events_checked, 0);
    }

    #[test]
    fn report_violations_are_sorted_by_event() {
        let (mut det, bb) = detector_with_buffer(2);
        let events = vec![
            // Exit without enter (seq 1), then double grant (seq 2, 3).
            Event::signal_exit(
                1,
                Nanos::new(10),
                M,
                Pid::new(3),
                bb.send,
                Some(bb.empty_cond),
                false,
            ),
            Event::enter(2, Nanos::new(20), M, Pid::new(1), bb.send, true),
            Event::enter(3, Nanos::new(30), M, Pid::new(2), bb.send, true),
        ];
        let report = det.checkpoint(Nanos::new(40), &events, &HashMap::new());
        let seqs: Vec<_> = report.violations.iter().map(|v| v.event_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort();
        assert_eq!(seqs, sorted, "{report}");
        assert!(report.violates_any(&[RuleId::St3RunningIsCaller]));
        assert!(report.violates_any(&[RuleId::St3RunningUnique]));
    }

    #[test]
    fn double_acquire_diagnosed_with_fault_class() {
        let (mut det, al) = detector_with_allocator(1);
        let e1 = Event::enter(1, Nanos::new(10), M, Pid::new(1), al.request, true);
        let e2 = Event::enter(2, Nanos::new(20), M, Pid::new(1), al.request, false);
        assert!(det.observe(&e1).is_empty());
        let v = det.observe(&e2);
        assert!(v.iter().any(|x| x.fault == Some(FaultKind::DoubleAcquire)), "{v:?}");
    }

    #[test]
    fn condid_payloads_survive_engine_paths() {
        // Regression guard: signalling an out-of-range condition id must
        // not panic the engine.
        let (mut det, bb) = detector_with_buffer(1);
        let e = Event::signal_exit(
            1,
            Nanos::new(5),
            M,
            Pid::new(1),
            bb.send,
            Some(CondId::new(40)),
            true,
        );
        let report = det.checkpoint(Nanos::new(10), &[e], &HashMap::new());
        assert!(!report.is_clean());
    }

    #[test]
    fn proc_name_out_of_range_does_not_panic() {
        let (mut det, _bb) = detector_with_buffer(1);
        let e = Event::enter(1, Nanos::new(5), M, Pid::new(1), ProcName::new(99), true);
        let report = det.checkpoint(Nanos::new(10), &[e], &HashMap::new());
        // Entering and never leaving is not itself an ST-1..4 violation
        // without a snapshot; just ensure no panic and bookkeeping ran.
        assert_eq!(report.events_checked, 1);
    }
}
