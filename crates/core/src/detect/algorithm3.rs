//! Algorithm-3: Calling-Orders Checking (paper §3.3.2).
//!
//! For resource-access-right-allocator monitors: checks the partial
//! ordering of `Request`/`Release` calls (ST-8a/b), the declared
//! path-expression call order (generalized ST-8), and the `Tlimit` hold
//! timer (ST-8c).
//!
//! The paper requires user-process-level faults to be caught **in real
//! time** — the incremental [`crate::detect::Detector`] therefore runs
//! these checks as each event is observed, not only at checkpoints. The
//! batch entry point below mirrors the paper's pseudo-code for tests and
//! benchmarks.

use crate::config::DetectorConfig;
use crate::event::Event;
use crate::ids::MonitorId;
use crate::lists::OrderState;
use crate::spec::MonitorSpec;
use crate::time::Nanos;
use crate::violation::Violation;

/// Runs Algorithm-3 as a batch over one checking window.
///
/// # Examples
///
/// ```
/// use rmon_core::detect::algorithm3;
/// use rmon_core::{DetectorConfig, MonitorId, MonitorSpec, Nanos};
///
/// let al = MonitorSpec::allocator("printer", 1);
/// let v = algorithm3::run(
///     MonitorId::new(0),
///     &al.spec,
///     &DetectorConfig::default(),
///     &[],
///     Nanos::ZERO,
/// );
/// assert!(v.is_empty());
/// ```
pub fn run(
    monitor: MonitorId,
    spec: &MonitorSpec,
    cfg: &DetectorConfig,
    events: &[Event],
    now: Nanos,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut os = OrderState::new(monitor, spec);
    for event in events {
        os.apply(spec, event, &mut out);
    }
    os.check_hold_timeout(cfg, now, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::ids::{CondId, Pid, ProcName};
    use crate::rule::RuleId;

    const M: MonitorId = MonitorId::new(0);
    const REQ: ProcName = ProcName::new(0);
    const REL: ProcName = ProcName::new(1);

    fn spec() -> MonitorSpec {
        MonitorSpec::allocator("res", 1).spec
    }

    fn cycle(seq: &mut u64, t: &mut u64, pid: u32) -> Vec<Event> {
        let mut ev = Vec::new();
        for (proc_name, cond) in [(REQ, None), (REL, Some(CondId::new(0)))] {
            *seq += 1;
            *t += 10;
            ev.push(Event::enter(*seq, Nanos::new(*t), M, Pid::new(pid), proc_name, true));
            *seq += 1;
            *t += 10;
            ev.push(Event::signal_exit(
                *seq,
                Nanos::new(*t),
                M,
                Pid::new(pid),
                proc_name,
                cond,
                false,
            ));
        }
        ev
    }

    #[test]
    fn balanced_cycles_are_clean() {
        let spec = spec();
        let (mut seq, mut t) = (0, 0);
        let mut events = Vec::new();
        events.extend(cycle(&mut seq, &mut t, 1));
        events.extend(cycle(&mut seq, &mut t, 2));
        let v = run(M, &spec, &DetectorConfig::without_timeouts(), &events, Nanos::new(t));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn release_first_is_flagged_in_order() {
        let spec = spec();
        let events = vec![Event::enter(1, Nanos::new(10), M, Pid::new(1), REL, true)];
        let v = run(M, &spec, &DetectorConfig::without_timeouts(), &events, Nanos::new(20));
        assert!(v.iter().any(|v| v.rule == RuleId::St8ReleaseWithoutRequest));
        assert!(v.iter().any(|v| v.fault == Some(FaultKind::ReleaseWithoutAcquire)));
    }

    #[test]
    fn never_released_is_flagged_by_tlimit() {
        let spec = spec();
        let events = vec![Event::enter(1, Nanos::new(10), M, Pid::new(1), REQ, true)];
        let cfg = DetectorConfig::builder().t_limit(Nanos::from_millis(1)).build();
        let v = run(M, &spec, &cfg, &events, Nanos::from_secs(1));
        assert!(v.iter().any(|v| v.rule == RuleId::St8HoldTimeout
            && v.fault == Some(FaultKind::ResourceNeverReleased)));
    }

    #[test]
    fn double_acquire_is_flagged() {
        let spec = spec();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), REQ, true),
            Event::signal_exit(2, Nanos::new(20), M, Pid::new(1), REQ, None, false),
            Event::enter(3, Nanos::new(30), M, Pid::new(1), REQ, false),
        ];
        let v = run(M, &spec, &DetectorConfig::without_timeouts(), &events, Nanos::new(40));
        assert!(v
            .iter()
            .any(|v| v.rule == RuleId::St8DuplicateRequest
                && v.fault == Some(FaultKind::DoubleAcquire)));
    }
}
