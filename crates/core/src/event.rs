//! Scheduling events — the paper's `EVENTset` (§3.1, as refined in §3.3.1).
//!
//! The run-time operation of a monitor is modelled as a finite sequence of
//! scheduling events `L = l₁ l₂ … lₙ`, where each event is one of
//!
//! * `Enter(Pid, Pname, flag)` — the process invoked the `Enter`
//!   primitive; `flag = 1` means it was granted the monitor immediately,
//!   `flag = 0` means it was blocked on the entry queue `EQ`,
//! * `Wait(Pid, Pname, Cond)` — the process blocked itself on condition
//!   queue `CQ[Cond]` (releasing the monitor),
//! * `Signal-Exit(Pid, Pname, Cond, flag)` — the process exited the
//!   monitor, signalling `Cond`; `flag = 1` means a process waiting on
//!   `CQ[Cond]` was resumed and handed the monitor, `flag = 0` means the
//!   condition queue was empty (so the head of `EQ`, if any, was resumed),
//! * `Terminate(Pid)` — a marker that the process died while inside the
//!   monitor (the paper's *internal process termination fault* carrier;
//!   emitting it is optional, detection also works through the `Tmax`
//!   timer alone).
//!
//! §3.3.1 of the paper drops per-event wall times from the optimized
//! event set but still maintains `Timer(Pid)`. We keep a logical
//! timestamp on every event — the same information, simpler plumbing —
//! plus a global sequence number that fixes the total order `<L`.

use crate::ids::{CondId, MonitorId, Pid, PidProc, ProcName};
use crate::time::Nanos;
use crate::vclock::VClock;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a scheduling event, with its kind-specific payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// The `Enter` primitive was invoked.
    Enter {
        /// The paper's flag: `true` if the process was granted the
        /// monitor immediately, `false` if it was queued on `EQ`.
        granted: bool,
    },
    /// The `Wait` primitive was invoked: the caller blocks on
    /// `CQ[cond]` and releases the monitor.
    Wait {
        /// The condition queue the caller joined.
        cond: CondId,
    },
    /// The combined `Signal-Exit` primitive was invoked: the caller
    /// leaves the monitor, signalling `cond` (if any).
    SignalExit {
        /// The condition signalled; `None` models a plain exit of a
        /// monitor without (or without naming) condition variables.
        cond: Option<CondId>,
        /// The paper's flag: `true` if a process waiting on the
        /// condition queue was resumed (and handed the monitor).
        resumed_waiter: bool,
    },
    /// The process terminated while inside the monitor.
    Terminate,
}

impl EventKind {
    /// Short machine-readable tag, used in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Enter { .. } => "Enter",
            EventKind::Wait { .. } => "Wait",
            EventKind::SignalExit { .. } => "Signal-Exit",
            EventKind::Terminate => "Terminate",
        }
    }
}

/// A single scheduling event `lᵢ` of the history sequence `L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// Global sequence number; fixes the total order `<L` across all
    /// monitors watched by one recorder.
    pub seq: u64,
    /// Logical timestamp (virtual or wall-clock nanoseconds).
    pub time: Nanos,
    /// The monitor in which the event occurred.
    pub monitor: MonitorId,
    /// The invoking process (`Pid`).
    pub pid: Pid,
    /// The monitor procedure being executed (`Pname`).
    pub proc_name: ProcName,
    /// Which primitive was invoked, with its payload.
    pub kind: EventKind,
    /// Happens-before stamp attached at segment publication when the
    /// recorder runs with vector clocks enabled (see
    /// [`crate::vclock`]); [`VClock::UNSET`] otherwise. Unset clocks
    /// are sound everywhere: they order the event by `seq` alone.
    pub vc: VClock,
}

impl Event {
    /// Convenience constructor for an `Enter` event.
    pub fn enter(
        seq: u64,
        time: Nanos,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        granted: bool,
    ) -> Self {
        Event {
            seq,
            time,
            monitor,
            pid,
            proc_name,
            kind: EventKind::Enter { granted },
            vc: VClock::UNSET,
        }
    }

    /// Convenience constructor for a `Wait` event.
    pub fn wait(
        seq: u64,
        time: Nanos,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        cond: CondId,
    ) -> Self {
        Event {
            seq,
            time,
            monitor,
            pid,
            proc_name,
            kind: EventKind::Wait { cond },
            vc: VClock::UNSET,
        }
    }

    /// Convenience constructor for a `Signal-Exit` event.
    pub fn signal_exit(
        seq: u64,
        time: Nanos,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        cond: Option<CondId>,
        resumed_waiter: bool,
    ) -> Self {
        Event {
            seq,
            time,
            monitor,
            pid,
            proc_name,
            kind: EventKind::SignalExit { cond, resumed_waiter },
            vc: VClock::UNSET,
        }
    }

    /// Convenience constructor for a `Terminate` marker event.
    pub fn terminate(
        seq: u64,
        time: Nanos,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Self {
        Event { seq, time, monitor, pid, proc_name, kind: EventKind::Terminate, vc: VClock::UNSET }
    }

    /// The same event carrying a happens-before stamp.
    pub fn with_vc(mut self, vc: VClock) -> Self {
        self.vc = vc;
        self
    }

    /// Whether this event happens-before `other` in the recorded
    /// partial order.
    ///
    /// With real stamps on both sides the answer is the clock test
    /// `other.vc[slot(self)] ≥ self.vc[slot(self)]`; if either stamp is
    /// unset or saturated the events fall back to sequence order (the
    /// executed linearization), which is always a sound
    /// over-approximation of happens-before.
    pub fn happens_before(&self, other: &Event) -> bool {
        if self.seq == other.seq {
            return false;
        }
        match (self.vc.owner(), other.vc.owner()) {
            (Some(slot), Some(_)) => other.vc.get(slot) >= self.vc.get(slot),
            _ => self.seq < other.seq,
        }
    }

    /// The `(pid, proc)` pair of this event — the element the checking
    /// lists store.
    pub fn pid_proc(&self) -> PidProc {
        PidProc::new(self.pid, self.proc_name)
    }

    /// Whether this is an `Enter` event.
    pub fn is_enter(&self) -> bool {
        matches!(self.kind, EventKind::Enter { .. })
    }

    /// Whether this is a `Wait` event.
    pub fn is_wait(&self) -> bool {
        matches!(self.kind, EventKind::Wait { .. })
    }

    /// Whether this is a `Signal-Exit` event.
    pub fn is_signal_exit(&self) -> bool {
        matches!(self.kind, EventKind::SignalExit { .. })
    }
}

/// K-way merges per-source event streams into one sequence ordered by
/// [`Event::seq`] — the drain half of a sharded recording pipeline.
///
/// Each input stream must already be internally sorted by `seq` (true
/// by construction for a per-thread recording segment: every thread
/// pushes its events in the order it drew their sequence numbers from
/// the shared counter). Streams may interleave arbitrarily; the merge
/// restores the single total order `<L` the checking algorithms expect
/// from a globally locked recorder.
///
/// Empty streams are skipped; a single non-empty stream is returned
/// as-is (no copy beyond the move). The merge is a repeated min-head
/// selection — the stream count is the *thread* count, small enough
/// that a heap would cost more than it saves.
///
/// # Examples
///
/// ```
/// use rmon_core::event::merge_by_seq;
/// use rmon_core::{Event, MonitorId, Nanos, Pid, ProcName};
///
/// let e = |seq| Event::enter(seq, Nanos::new(seq), MonitorId::new(0), Pid::new(1), ProcName::new(0), true);
/// let merged = merge_by_seq(vec![vec![e(1), e(4)], vec![e(2), e(3)]]);
/// let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
/// assert_eq!(seqs, [1, 2, 3, 4]);
/// ```
pub fn merge_by_seq(mut streams: Vec<Vec<Event>>) -> Vec<Event> {
    streams.retain(|s| !s.is_empty());
    match streams.len() {
        0 => return Vec::new(),
        1 => return streams.pop().expect("one stream"),
        _ => {}
    }
    let total = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Per-stream read cursors; exhausted streams are swap-removed.
    let mut cursors: Vec<(usize, &[Event])> = streams.iter().map(|s| (0, s.as_slice())).collect();
    while !cursors.is_empty() {
        let mut best = 0;
        let mut best_seq = cursors[0].1[cursors[0].0].seq;
        for (i, (pos, stream)) in cursors.iter().enumerate().skip(1) {
            let seq = stream[*pos].seq;
            if seq < best_seq {
                best = i;
                best_seq = seq;
            }
        }
        let (pos, stream) = &mut cursors[best];
        out.push(stream[*pos]);
        *pos += 1;
        if *pos == stream.len() {
            cursors.swap_remove(best);
        }
    }
    out
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EventKind::Enter { granted } => write!(
                f,
                "l{}@{} {}: Enter({}, {}, {})",
                self.seq, self.time, self.monitor, self.pid, self.proc_name, granted as u8
            ),
            EventKind::Wait { cond } => write!(
                f,
                "l{}@{} {}: Wait({}, {}, {})",
                self.seq, self.time, self.monitor, self.pid, self.proc_name, cond
            ),
            EventKind::SignalExit { cond, resumed_waiter } => {
                let c = match cond {
                    Some(c) => c.to_string(),
                    None => "-".to_string(),
                };
                write!(
                    f,
                    "l{}@{} {}: Signal-Exit({}, {}, {}, {})",
                    self.seq,
                    self.time,
                    self.monitor,
                    self.pid,
                    self.proc_name,
                    c,
                    resumed_waiter as u8
                )
            }
            EventKind::Terminate => write!(
                f,
                "l{}@{} {}: Terminate({}, {})",
                self.seq, self.time, self.monitor, self.pid, self.proc_name
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid() -> MonitorId {
        MonitorId::new(0)
    }

    #[test]
    fn constructors_set_kind() {
        let e = Event::enter(0, Nanos::ZERO, mid(), Pid::new(1), ProcName::new(0), true);
        assert!(e.is_enter());
        assert!(!e.is_wait());
        assert_eq!(e.kind, EventKind::Enter { granted: true });

        let w = Event::wait(1, Nanos::ZERO, mid(), Pid::new(1), ProcName::new(0), CondId::new(2));
        assert!(w.is_wait());
        assert_eq!(w.kind, EventKind::Wait { cond: CondId::new(2) });

        let x = Event::signal_exit(
            2,
            Nanos::ZERO,
            mid(),
            Pid::new(1),
            ProcName::new(0),
            Some(CondId::new(2)),
            true,
        );
        assert!(x.is_signal_exit());

        let t = Event::terminate(3, Nanos::ZERO, mid(), Pid::new(1), ProcName::new(0));
        assert_eq!(t.kind, EventKind::Terminate);
    }

    #[test]
    fn pid_proc_extraction() {
        let e = Event::enter(0, Nanos::ZERO, mid(), Pid::new(9), ProcName::new(3), false);
        assert_eq!(e.pid_proc(), PidProc::new(Pid::new(9), ProcName::new(3)));
    }

    #[test]
    fn display_formats_all_kinds() {
        let e = Event::enter(5, Nanos::new(10), mid(), Pid::new(1), ProcName::new(0), false);
        assert_eq!(e.to_string(), "l5@10ns M0: Enter(P1, proc#0, 0)");
        let w =
            Event::wait(6, Nanos::new(20), mid(), Pid::new(1), ProcName::new(0), CondId::new(1));
        assert!(w.to_string().contains("Wait(P1, proc#0, cond#1)"));
        let x = Event::signal_exit(
            7,
            Nanos::new(30),
            mid(),
            Pid::new(2),
            ProcName::new(1),
            None,
            false,
        );
        assert!(x.to_string().contains("Signal-Exit(P2, proc#1, -, 0)"));
        let t = Event::terminate(8, Nanos::new(40), mid(), Pid::new(2), ProcName::new(1));
        assert!(t.to_string().contains("Terminate(P2, proc#1)"));
    }

    #[test]
    fn tags() {
        assert_eq!(EventKind::Enter { granted: true }.tag(), "Enter");
        assert_eq!(EventKind::Wait { cond: CondId::new(0) }.tag(), "Wait");
        assert_eq!(
            EventKind::SignalExit { cond: None, resumed_waiter: false }.tag(),
            "Signal-Exit"
        );
        assert_eq!(EventKind::Terminate.tag(), "Terminate");
    }

    #[test]
    fn merge_by_seq_restores_total_order() {
        let e = |seq: u64| {
            Event::enter(seq, Nanos::new(seq), mid(), Pid::new(1), ProcName::new(0), true)
        };
        // Three interleaved streams, one empty.
        let merged =
            merge_by_seq(vec![vec![e(2), e(5), e(9)], vec![], vec![e(1), e(3)], vec![e(4), e(7)]]);
        let seqs: Vec<u64> = merged.iter().map(|ev| ev.seq).collect();
        assert_eq!(seqs, [1, 2, 3, 4, 5, 7, 9]);
        // Degenerate shapes.
        assert!(merge_by_seq(Vec::new()).is_empty());
        assert!(merge_by_seq(vec![Vec::new()]).is_empty());
        let single = merge_by_seq(vec![vec![e(8), e(11)]]);
        assert_eq!(single.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let e =
            Event::wait(6, Nanos::new(20), mid(), Pid::new(1), ProcName::new(0), CondId::new(1));
        let json = serde_json_like(&e);
        assert!(json.contains("Wait"));
    }

    /// Tiny stand-in so we don't need serde_json as a dev-dep: the debug
    /// formatting of the Serialize impl structure is enough to check the
    /// derive exists and compiles.
    fn serde_json_like<T: serde::Serialize + std::fmt::Debug>(t: &T) -> String {
        format!("{t:?}")
    }
}
