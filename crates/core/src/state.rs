//! Scheduling states — the paper's `⟨EQ, CQ[], R#⟩` 3-tuple (§3.1),
//! extended with the `Running` set recorded at checking time (§3.3.1).
//!
//! A [`MonitorState`] is an *observed snapshot* of a monitor taken by the
//! data-gathering layer at a checkpoint. Snapshots deliberately allow
//! states that a correct monitor could never be in (for example more than
//! one running process) — the whole point of the detector is to compare
//! such observations against the state the checking lists *derive* from
//! the event sequence.

use crate::ids::{Pid, PidProc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Observed snapshot of one monitor's scheduling state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MonitorState {
    /// The external (entry) waiting queue `EQ`, head first.
    pub entry_queue: Vec<PidProc>,
    /// The condition queues `CQ[cond]`, each head first, indexed by
    /// [`crate::CondId`].
    pub cond_queues: Vec<Vec<PidProc>>,
    /// The processes currently running inside the monitor (the paper's
    /// `Running`). A correct monitor has at most one; snapshots of a
    /// faulty monitor may legitimately report more.
    pub running: Vec<PidProc>,
    /// The number of currently available resources `R#` (free buffer
    /// slots for a communication coordinator, free units for an
    /// allocator). `None` for monitors without a resource counter.
    pub available: Option<u64>,
}

impl MonitorState {
    /// Creates an empty state with `conds` condition queues and no
    /// resource counter.
    pub fn new(conds: usize) -> Self {
        MonitorState {
            entry_queue: Vec::new(),
            cond_queues: vec![Vec::new(); conds],
            running: Vec::new(),
            available: None,
        }
    }

    /// Creates an empty state with `conds` condition queues and an
    /// initial resource count.
    pub fn with_resources(conds: usize, available: u64) -> Self {
        let mut s = Self::new(conds);
        s.available = Some(available);
        s
    }

    /// Number of processes waiting on the entry queue (`|EQ|`).
    pub fn entry_len(&self) -> usize {
        self.entry_queue.len()
    }

    /// Number of processes waiting on condition queue `cond`
    /// (`|CQ[cond]|`).
    ///
    /// Returns 0 for out-of-range indices: a snapshot with fewer
    /// condition queues than the spec simply has empty queues there.
    pub fn cond_len(&self, cond: usize) -> usize {
        self.cond_queues.get(cond).map_or(0, Vec::len)
    }

    /// Whether `pid` appears anywhere in the snapshot (entry queue,
    /// a condition queue, or running).
    pub fn contains(&self, pid: Pid) -> bool {
        self.entry_queue.iter().any(|pp| pp.pid == pid)
            || self.cond_queues.iter().any(|q| q.iter().any(|pp| pp.pid == pid))
            || self.running.iter().any(|pp| pp.pid == pid)
    }

    /// Total number of processes captured by the snapshot.
    pub fn population(&self) -> usize {
        self.entry_queue.len()
            + self.cond_queues.iter().map(Vec::len).sum::<usize>()
            + self.running.len()
    }
}

impl fmt::Display for MonitorState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨EQ=[")?;
        for (i, pp) in self.entry_queue.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{pp}")?;
        }
        write!(f, "], CQ=[")?;
        for (ci, q) in self.cond_queues.iter().enumerate() {
            if ci > 0 {
                write!(f, " ")?;
            }
            write!(f, "c{ci}:{}", q.len())?;
        }
        write!(f, "], Run=[")?;
        for (i, pp) in self.running.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{pp}")?;
        }
        write!(f, "]")?;
        if let Some(a) = self.available {
            write!(f, ", R#={a}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcName;

    fn pp(p: u32) -> PidProc {
        PidProc::new(Pid::new(p), ProcName::new(0))
    }

    #[test]
    fn new_state_is_empty() {
        let s = MonitorState::new(2);
        assert_eq!(s.entry_len(), 0);
        assert_eq!(s.cond_len(0), 0);
        assert_eq!(s.cond_len(1), 0);
        assert_eq!(s.population(), 0);
        assert_eq!(s.available, None);
    }

    #[test]
    fn with_resources_sets_counter() {
        let s = MonitorState::with_resources(1, 5);
        assert_eq!(s.available, Some(5));
    }

    #[test]
    fn cond_len_out_of_range_is_zero() {
        let s = MonitorState::new(1);
        assert_eq!(s.cond_len(7), 0);
    }

    #[test]
    fn contains_searches_all_queues() {
        let mut s = MonitorState::new(2);
        s.entry_queue.push(pp(1));
        s.cond_queues[1].push(pp(2));
        s.running.push(pp(3));
        assert!(s.contains(Pid::new(1)));
        assert!(s.contains(Pid::new(2)));
        assert!(s.contains(Pid::new(3)));
        assert!(!s.contains(Pid::new(4)));
        assert_eq!(s.population(), 3);
    }

    #[test]
    fn display_is_compact() {
        let mut s = MonitorState::with_resources(1, 2);
        s.entry_queue.push(pp(1));
        s.running.push(pp(2));
        let rendered = s.to_string();
        assert!(rendered.contains("EQ=[P1(proc#0)]"), "{rendered}");
        assert!(rendered.contains("R#=2"), "{rendered}");
    }

    #[test]
    fn default_is_queueless() {
        let s = MonitorState::default();
        assert_eq!(s.cond_queues.len(), 0);
        assert_eq!(s.population(), 0);
    }
}
