//! The history-information database (§3.1, §4).
//!
//! The prototype of §4 maintains *"a history information database,
//! which consists of the scheduling event sequence recorded during
//! monitor operation and the checking lists generated at the checking
//! points"*. [`HistoryDb`] is that database's event half: it assigns
//! the global sequence numbers that define the total order `<L`,
//! buffers events between checkpoints, and prunes aggressively — the
//! paper: *"most of the information can be removed after being used"*.
//!
//! Thread-safety is layered on top by the runtime crate; the core type
//! is single-threaded.

use crate::event::{Event, EventKind};
use crate::ids::{MonitorId, Pid, ProcName};
use crate::time::Nanos;
use crate::vclock::VClock;
use std::collections::VecDeque;

/// Event log with sequence numbering, windowed draining and bounded
/// retention.
#[derive(Debug, Clone)]
pub struct HistoryDb {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
    max_len: Option<usize>,
}

impl HistoryDb {
    /// Creates an unbounded history database.
    pub fn new() -> Self {
        HistoryDb { events: VecDeque::new(), next_seq: 1, dropped: 0, max_len: None }
    }

    /// Creates a database that retains at most `max_len` undrained
    /// events; older events are dropped (and counted) when the bound is
    /// exceeded. A dropped event weakens detection for its window — the
    /// drop counter lets callers surface that.
    pub fn with_capacity_limit(max_len: usize) -> Self {
        HistoryDb { events: VecDeque::new(), next_seq: 1, dropped: 0, max_len: Some(max_len) }
    }

    /// Records an event, assigning it the next sequence number.
    /// Returns the recorded event (with `seq` filled in).
    pub fn record(
        &mut self,
        time: Nanos,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
    ) -> Event {
        let event =
            Event { seq: self.next_seq, time, monitor, pid, proc_name, kind, vc: VClock::UNSET };
        self.next_seq += 1;
        self.events.push_back(event);
        if let Some(max) = self.max_len {
            while self.events.len() > max {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        event
    }

    /// Records an already-stamped event coming from an external
    /// recorder, keeping sequence numbering monotone.
    pub fn record_event(&mut self, event: Event) {
        self.next_seq = self.next_seq.max(event.seq + 1);
        self.events.push_back(event);
        if let Some(max) = self.max_len {
            while self.events.len() > max {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
    }

    /// Takes the buffered window `L = l₁…lₙ` for a checkpoint, leaving
    /// the database empty (the paper's pruning step).
    pub fn drain_window(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Number of buffered (undrained) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped due to the retention bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Iterates over the buffered events without draining.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }
}

impl Default for HistoryDb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(db: &mut HistoryDb, n: u64) -> Event {
        db.record(
            Nanos::new(n),
            MonitorId::new(0),
            Pid::new(1),
            ProcName::new(0),
            EventKind::Enter { granted: true },
        )
    }

    #[test]
    fn sequence_numbers_are_monotone_from_one() {
        let mut db = HistoryDb::new();
        let a = push(&mut db, 1);
        let b = push(&mut db, 2);
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
        assert_eq!(db.next_seq(), 3);
    }

    #[test]
    fn drain_empties_the_window() {
        let mut db = HistoryDb::new();
        push(&mut db, 1);
        push(&mut db, 2);
        assert_eq!(db.len(), 2);
        let window = db.drain_window();
        assert_eq!(window.len(), 2);
        assert!(db.is_empty());
        // Sequence numbering continues across windows.
        let c = push(&mut db, 3);
        assert_eq!(c.seq, 3);
    }

    #[test]
    fn capacity_limit_drops_oldest_and_counts() {
        let mut db = HistoryDb::with_capacity_limit(2);
        push(&mut db, 1);
        push(&mut db, 2);
        push(&mut db, 3);
        assert_eq!(db.len(), 2);
        assert_eq!(db.dropped(), 1);
        let window = db.drain_window();
        assert_eq!(window[0].seq, 2);
    }

    #[test]
    fn record_event_keeps_numbering_monotone() {
        let mut db = HistoryDb::new();
        let ext =
            Event::enter(10, Nanos::new(1), MonitorId::new(0), Pid::new(1), ProcName::new(0), true);
        db.record_event(ext);
        let next = push(&mut db, 2);
        assert_eq!(next.seq, 11);
    }

    #[test]
    fn iter_does_not_drain() {
        let mut db = HistoryDb::new();
        push(&mut db, 1);
        assert_eq!(db.iter().count(), 1);
        assert_eq!(db.len(), 1);
    }
}
