//! Logical time.
//!
//! The detector is execution-agnostic: the simulator stamps events with
//! virtual nanoseconds, the real-thread runtime with monotonic wall-clock
//! nanoseconds. Both are represented as [`Nanos`], a monotone `u64`
//! nanosecond counter, so the timer rules (`Tmax`, `Tio`, `Tlimit` of
//! §3.3) work identically on either substrate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in logical time, in nanoseconds since an arbitrary epoch.
///
/// # Examples
///
/// ```
/// use rmon_core::Nanos;
/// let t0 = Nanos::from_millis(1);
/// let t1 = t0 + Nanos::from_micros(500);
/// assert_eq!(t1.saturating_since(t0), Nanos::from_micros(500));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Nanos(u64);

impl Nanos {
    /// Time zero (the epoch).
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in (truncated) whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the value as seconds in floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is in
    /// the future (timer arithmetic must never underflow).
    pub fn saturating_since(self, earlier: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Converts to a [`std::time::Duration`].
    pub const fn to_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }
}

impl From<Duration> for Nanos {
    fn from(d: Duration) -> Self {
        Nanos(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl From<Nanos> for Duration {
    fn from(n: Nanos) -> Self {
        n.to_duration()
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// # Panics
    ///
    /// Panics in debug mode on underflow; use
    /// [`Nanos::saturating_since`] for timer arithmetic.
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = Nanos::new(5);
        let b = Nanos::new(10);
        assert_eq!(b.saturating_since(a), Nanos::new(5));
        assert_eq!(a.saturating_since(b), Nanos::ZERO);
    }

    #[test]
    fn add_and_sub() {
        let a = Nanos::new(5);
        let b = Nanos::new(3);
        assert_eq!(a + b, Nanos::new(8));
        assert_eq!(a - b, Nanos::new(2));
        let mut c = a;
        c += b;
        assert_eq!(c, Nanos::new(8));
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::from_millis(250);
        let n: Nanos = d.into();
        assert_eq!(n, Nanos::from_millis(250));
        let back: Duration = n.into();
        assert_eq!(back, d);
    }

    #[test]
    fn display_uses_human_units() {
        assert_eq!(Nanos::new(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(3).to_string(), "3.000us");
        assert_eq!(Nanos::from_millis(4).to_string(), "4.000ms");
        assert_eq!(Nanos::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(Nanos::ZERO < Nanos::new(1));
        assert!(Nanos::new(1) < Nanos::MAX);
    }

    #[test]
    fn as_secs_f64_matches() {
        assert!((Nanos::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
