//! Rule identifiers: the paper's FD-Rules (§3.2) and ST-Rules (§3.3.2).
//!
//! The **FD-Rules** are declarative properties of a *valid scheduling
//! sequence* `⟨L, S⟩`; they are checked directly by the reference checker
//! ([`crate::reference`]). The **ST-Rules** are the equivalent
//! state-transition formulation over the checking lists; they are checked
//! incrementally by the detection algorithms ([`crate::detect`]). The
//! paper proves any FD violation implies an ST violation; our property
//! tests exercise that equivalence.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a detection rule.
///
/// The `St*` variants are what the three detection algorithms report;
/// the `Fd*` variants are what the full-history reference checker
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RuleId {
    // ----- ST-Rules (incremental engine) -------------------------------
    /// ST-1: at a checkpoint the replayed Enter-Q-List must equal the
    /// observed `EQ`.
    St1EntrySnapshot,
    /// ST-2: at a checkpoint each replayed Wait-Cond-List must equal the
    /// observed `CQ[cond]`.
    St2CondSnapshot,
    /// ST-3a: at any time `|Running-List| ≤ 1`.
    St3RunningAtMostOne,
    /// ST-3b/3c: the process performing `Wait`/`Signal-Exit` — or that
    /// just completed `Enter(1)` — must be exactly the running process.
    St3RunningIsCaller,
    /// ST-3c for granted entry: after `Enter(pid, 1)` the Running-List
    /// must be `{pid}` (catches two-inside states).
    St3RunningUnique,
    /// ST-3d: when `Enter(pid, 0)` blocks a process, some process must
    /// be running inside (`|Running-List| = 1`).
    St3BlockedWhileFree,
    /// ST-4: the process issuing an event must not currently be parked
    /// on the entry queue or any condition queue.
    St4NoGhostEvents,
    /// ST-5: no process stays inside the monitor (running or on a
    /// condition queue) longer than `Tmax`.
    St5InsideTimeout,
    /// ST-6: no process waits on the entry queue longer than `Tio`.
    St6EntryTimeout,
    /// ST-7a/b: `0 ≤ r ≤ s ≤ r + Rmax` and
    /// `R#(t) = R#(p) + r − s`.
    St7CountInvariant,
    /// ST-7c: `Wait` by a Send-role procedure on the buffer-full
    /// condition requires `Resource-No = 0`.
    St7WaitSendBufferFull,
    /// ST-7d: `Wait` by a Receive-role procedure on the buffer-empty
    /// condition requires `Resource-No = Rmax`.
    St7WaitReceiveBufferEmpty,
    /// ST-8a: no process may appear twice in the Request-List.
    St8DuplicateRequest,
    /// ST-8b: a `Release` caller must be in the Request-List.
    St8ReleaseWithoutRequest,
    /// ST-8c: no process stays in the Request-List longer than
    /// `Tlimit`.
    St8HoldTimeout,
    /// ST-8 generalized: a call violates the declared path-expression
    /// call order.
    St8CallOrder,
    /// A user-supplied state assertion declared on the monitor failed
    /// at a checkpoint (the paper's §5 extension).
    UserAssertion,

    // ----- FD-Rules (reference checker) --------------------------------
    /// FD-1a: a process enters only when no process uses the monitor.
    Fd1aMutualExclusion,
    /// FD-1b: a releasing `Wait`/`Signal-Exit` resumes exactly one
    /// entry-queue process when `EQ` is non-empty.
    Fd1bEntryHandoff,
    /// FD-1c: `Signal-Exit(flag=1)` resumes exactly one process from
    /// the signalled condition queue.
    Fd1cCondHandoff,
    /// FD-1d: every process operating inside a monitor has called
    /// `Enter`.
    Fd1dEnterObserved,
    /// FD-2: every entered process exits within `Tmax`.
    Fd2Nontermination,
    /// FD-3: a requesting process is delayed only when the monitor is in
    /// use.
    Fd3FairResponse,
    /// FD-4: no starvation / lost process: every blocked process is
    /// resumed within `Tio` and queue lengths change consistently.
    Fd4NoStarvation,
    /// FD-5a: a condition waiter is resumed only by a matching
    /// `Signal` on that condition.
    Fd5aCondResume,
    /// FD-5b: an entry waiter is resumed only by a `Wait` or a
    /// non-signalling exit.
    Fd5bEntryResume,
    /// FD-6: communication-coordinator resource invariants
    /// (`0 ≤ r ≤ s ≤ r + Rmax`, wait-on-full/empty conditions).
    Fd6ResourceConsistency,
    /// FD-7: correct ordering of Request/Release procedure calls.
    Fd7CallOrdering,
}

impl RuleId {
    /// All ST-rule identifiers.
    pub const ST_RULES: [RuleId; 17] = [
        RuleId::St1EntrySnapshot,
        RuleId::St2CondSnapshot,
        RuleId::St3RunningAtMostOne,
        RuleId::St3RunningIsCaller,
        RuleId::St3RunningUnique,
        RuleId::St3BlockedWhileFree,
        RuleId::St4NoGhostEvents,
        RuleId::St5InsideTimeout,
        RuleId::St6EntryTimeout,
        RuleId::St7CountInvariant,
        RuleId::St7WaitSendBufferFull,
        RuleId::St7WaitReceiveBufferEmpty,
        RuleId::St8DuplicateRequest,
        RuleId::St8ReleaseWithoutRequest,
        RuleId::St8HoldTimeout,
        RuleId::St8CallOrder,
        RuleId::UserAssertion,
    ];

    /// All FD-rule identifiers.
    pub const FD_RULES: [RuleId; 11] = [
        RuleId::Fd1aMutualExclusion,
        RuleId::Fd1bEntryHandoff,
        RuleId::Fd1cCondHandoff,
        RuleId::Fd1dEnterObserved,
        RuleId::Fd2Nontermination,
        RuleId::Fd3FairResponse,
        RuleId::Fd4NoStarvation,
        RuleId::Fd5aCondResume,
        RuleId::Fd5bEntryResume,
        RuleId::Fd6ResourceConsistency,
        RuleId::Fd7CallOrdering,
    ];

    /// Short identifier, e.g. `"ST-3a"` or `"FD-6"`.
    pub fn code(self) -> &'static str {
        use RuleId::*;
        match self {
            St1EntrySnapshot => "ST-1",
            St2CondSnapshot => "ST-2",
            St3RunningAtMostOne => "ST-3a",
            St3RunningIsCaller => "ST-3b",
            St3RunningUnique => "ST-3c",
            St3BlockedWhileFree => "ST-3d",
            St4NoGhostEvents => "ST-4",
            St5InsideTimeout => "ST-5",
            St6EntryTimeout => "ST-6",
            St7CountInvariant => "ST-7ab",
            St7WaitSendBufferFull => "ST-7c",
            St7WaitReceiveBufferEmpty => "ST-7d",
            St8DuplicateRequest => "ST-8a",
            St8ReleaseWithoutRequest => "ST-8b",
            St8HoldTimeout => "ST-8c",
            St8CallOrder => "ST-8*",
            UserAssertion => "ASSERT",
            Fd1aMutualExclusion => "FD-1a",
            Fd1bEntryHandoff => "FD-1b",
            Fd1cCondHandoff => "FD-1c",
            Fd1dEnterObserved => "FD-1d",
            Fd2Nontermination => "FD-2",
            Fd3FairResponse => "FD-3",
            Fd4NoStarvation => "FD-4",
            Fd5aCondResume => "FD-5a",
            Fd5bEntryResume => "FD-5b",
            Fd6ResourceConsistency => "FD-6",
            Fd7CallOrdering => "FD-7",
        }
    }

    /// Whether this is an incremental (ST) rule.
    pub fn is_st(self) -> bool {
        Self::ST_RULES.contains(&self)
    }

    /// Whether this is a reference (FD) rule.
    pub fn is_fd(self) -> bool {
        Self::FD_RULES.contains(&self)
    }

    /// Which detection algorithm reports this ST rule (1, 2 or 3);
    /// `None` for FD rules.
    pub fn algorithm(self) -> Option<u8> {
        use RuleId::*;
        match self {
            St1EntrySnapshot | St2CondSnapshot | St3RunningAtMostOne | St3RunningIsCaller
            | St3RunningUnique | St3BlockedWhileFree | St4NoGhostEvents | St5InsideTimeout
            | St6EntryTimeout => Some(1),
            St7CountInvariant | St7WaitSendBufferFull | St7WaitReceiveBufferEmpty => Some(2),
            St8DuplicateRequest | St8ReleaseWithoutRequest | St8HoldTimeout | St8CallOrder => {
                Some(3)
            }
            // Assertions are checked by the engine alongside
            // Algorithm-1's snapshot comparison.
            UserAssertion => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn codes_are_unique() {
        let mut all: Vec<RuleId> = RuleId::ST_RULES.to_vec();
        all.extend(RuleId::FD_RULES);
        let codes: BTreeSet<_> = all.iter().map(|r| r.code()).collect();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn st_fd_partition() {
        for r in RuleId::ST_RULES {
            assert!(r.is_st());
            assert!(!r.is_fd());
            assert!(r.algorithm().is_some(), "{r} must belong to an algorithm");
        }
        for r in RuleId::FD_RULES {
            assert!(r.is_fd());
            assert!(!r.is_st());
            assert_eq!(r.algorithm(), None);
        }
    }

    #[test]
    fn three_algorithms_cover_all_st_rules() {
        let algs: BTreeSet<_> = RuleId::ST_RULES.iter().filter_map(|r| r.algorithm()).collect();
        assert_eq!(algs, BTreeSet::from([1, 2, 3]));
    }

    #[test]
    fn display_is_code() {
        assert_eq!(RuleId::St3RunningAtMostOne.to_string(), "ST-3a");
        assert_eq!(RuleId::Fd6ResourceConsistency.to_string(), "FD-6");
    }
}
