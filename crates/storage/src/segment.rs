//! One append-only segment file: CRC-framed records behind a fixed
//! header, with torn-tail recovery.
//!
//! ## On-disk layout (normative — see `docs/STORAGE.md`)
//!
//! ```text
//! [magic "RMONOPL" | version u8]                     8-byte header
//! [len u32 LE | crc32 u32 LE | payload len bytes]*   frames, densely packed
//! ```
//!
//! `crc32` is [`rmon_core::oplog::crc32`] over the payload bytes only.
//! A frame with `len == 0`, `len > max_record_bytes`, `len` past the
//! end of the file, or a CRC mismatch is **torn**: the valid prefix of
//! the segment ends at the frame's first byte, and everything from
//! there on is discarded. Because writers append frames atomically with
//! respect to their own ordering (a frame is written before the next
//! one starts), a crash can only tear the *last* frame of a segment.

use crate::frame::{frame_into, parse_frame, FrameStep};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Segment file magic: 7 identifying bytes + 1 format-version byte.
pub const SEGMENT_MAGIC: [u8; 8] = *b"RMONOPL\x01";

/// Header length in bytes.
pub const SEGMENT_HEADER_BYTES: u64 = 8;

/// Frame overhead in bytes (`len` + `crc`) — see [`crate::frame`],
/// which owns the frame codec shared with the wire protocol.
pub const FRAME_HEADER_BYTES: u64 = crate::frame::FRAME_HEADER_BYTES as u64;

/// Result of scanning one segment's bytes: the whole records found and
/// where the valid prefix ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Decoded frame payloads, in file order.
    pub records: Vec<Vec<u8>>,
    /// Length in bytes of the valid prefix (header + whole frames).
    /// Truncating the file to this length removes the torn tail.
    pub valid_len: u64,
    /// Bytes past the valid prefix (the torn tail; 0 for a clean file).
    pub torn_bytes: u64,
    /// Whether the 8-byte header was present and well-formed. A segment
    /// with a bad header has no valid prefix at all (`valid_len == 0`).
    pub header_ok: bool,
}

/// Scans segment bytes (header + frames) and returns every whole record
/// plus the torn-tail boundary. Never panics on any input — corrupt
/// length fields are bounded by `max_record_bytes` and the buffer size.
pub fn scan_segment_bytes(bytes: &[u8], max_record_bytes: u32) -> SegmentScan {
    if bytes.len() < SEGMENT_HEADER_BYTES as usize || bytes[..8] != SEGMENT_MAGIC {
        return SegmentScan {
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
            header_ok: false,
        };
    }
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_BYTES as usize;
    // Both an incomplete frame (NeedMore) and a corrupt one (Invalid)
    // end the valid prefix here: on disk either shape is a torn tail.
    while let FrameStep::Frame { len } = parse_frame(&bytes[pos..], max_record_bytes) {
        let head = pos + FRAME_HEADER_BYTES as usize;
        records.push(bytes[head..head + len].to_vec());
        pos = head + len;
    }
    SegmentScan {
        records,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
        header_ok: true,
    }
}

/// Reads and scans a segment file. See [`scan_segment_bytes`].
pub fn scan_segment(path: &Path, max_record_bytes: u32) -> io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(scan_segment_bytes(&bytes, max_record_bytes))
}

/// Recovers a segment in place: scans it, truncates the torn tail (so
/// the file ends at the last whole record) and returns the scan. A
/// segment whose header is damaged is truncated to zero length; the
/// caller decides whether to re-seed it with a fresh header.
pub fn recover_segment(path: &Path, max_record_bytes: u32) -> io::Result<SegmentScan> {
    let scan = scan_segment(path, max_record_bytes)?;
    if scan.torn_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_len)?;
        file.sync_data()?;
    }
    Ok(scan)
}

/// The append half of one segment: an open file positioned at its end,
/// tracking its byte length so rotation decisions need no `stat`.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl SegmentWriter {
    /// Creates a fresh segment (truncating any existing file) and
    /// writes its header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        file.write_all(&SEGMENT_MAGIC)?;
        Ok(SegmentWriter { file, path: path.to_path_buf(), bytes: SEGMENT_HEADER_BYTES })
    }

    /// Opens an existing segment for appending after recovery. `len`
    /// must be the recovered (post-truncation) file length.
    pub fn append_to(path: &Path, len: u64) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(SegmentWriter { file, path: path.to_path_buf(), bytes: len })
    }

    /// Appends one framed record; returns the new file length.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
        frame_into(&mut frame, payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        Ok(self.bytes)
    }

    /// Current file length in bytes (header + frames).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes appended frames to durable storage (`fdatasync`).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rmon-seg-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_records(path: &Path, payloads: &[&[u8]]) -> u64 {
        let mut w = SegmentWriter::create(path).unwrap();
        for p in payloads {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        w.bytes()
    }

    #[test]
    fn roundtrip_records() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("seg");
        write_records(&path, &[b"alpha".as_slice(), b"beta", b"gamma-gamma"]);
        let scan = scan_segment(&path, 1 << 20).unwrap();
        assert!(scan.header_ok);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma-gamma".to_vec()]
        );
    }

    /// Satellite requirement: truncate the file at **every byte offset**
    /// and assert recovery lands on the last whole record, no panics.
    #[test]
    fn truncation_at_every_byte_offset_recovers_whole_prefix() {
        let dir = tmp_dir("trunc");
        let full = dir.join("full.seg");
        let len = write_records(&full, &[b"first-record".as_slice(), b"second", b"the-third-one"]);
        let bytes = std::fs::read(&full).unwrap();
        assert_eq!(bytes.len() as u64, len);
        // Frame boundaries: header, then 8+12, 8+6, 8+13.
        let boundaries = [8u64, 8 + 20, 8 + 20 + 14, 8 + 20 + 14 + 21];
        assert_eq!(*boundaries.last().unwrap(), len);
        for cut in 0..=bytes.len() {
            let path = dir.join("cut.seg");
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let scan = recover_segment(&path, 1 << 20).unwrap();
            // Expected: the largest boundary ≤ cut (0 if the header
            // itself is torn).
            let expect = boundaries.iter().rev().find(|&&b| b <= cut as u64).copied().unwrap_or(0);
            assert_eq!(scan.valid_len, expect, "cut at {cut}");
            let expect_records = boundaries.iter().filter(|&&b| b > 8 && b <= cut as u64).count();
            assert_eq!(scan.records.len(), expect_records, "cut at {cut}");
            assert_eq!(std::fs::metadata(&path).unwrap().len(), expect, "cut at {cut}");
            // Recovery is idempotent: a second pass finds a clean file.
            let again = recover_segment(&path, 1 << 20).unwrap();
            assert_eq!(again.torn_bytes, 0, "cut at {cut}");
            assert_eq!(again.records.len(), expect_records, "cut at {cut}");
        }
    }

    /// Satellite requirement: corrupt (bit-flip) the file at every byte
    /// offset; open() must recover to a whole-record prefix, no panics.
    #[test]
    fn corruption_at_every_byte_offset_never_panics() {
        let dir = tmp_dir("corrupt");
        let full = dir.join("full.seg");
        write_records(&full, &[b"first-record".as_slice(), b"second", b"the-third-one"]);
        let bytes = std::fs::read(&full).unwrap();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let path = dir.join("flip.seg");
            std::fs::write(&path, &corrupt).unwrap();
            let scan = recover_segment(&path, 1 << 20).unwrap();
            // Every surviving record must be one of the originals: a
            // flipped byte can only drop records (CRC/len/magic breaks),
            // never fabricate or alter one undetected.
            for rec in &scan.records {
                assert!(
                    [b"first-record".as_slice(), b"second", b"the-third-one"].contains(&&rec[..]),
                    "byte {i}: unexpected record {rec:?}"
                );
            }
            assert!(scan.records.len() <= 3, "byte {i}");
        }
    }

    #[test]
    fn oversized_length_field_is_torn_not_allocated() {
        let dir = tmp_dir("oversize");
        let path = dir.join("seg");
        write_records(&path, &[b"ok".as_slice()]);
        // Append a frame header claiming a 3 GiB payload.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&(3_000_000_000u32).to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        let scan = scan_segment(&path, 1 << 20).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn_bytes, 8);
    }

    #[test]
    fn append_to_continues_after_recovery() {
        let dir = tmp_dir("resume");
        let path = dir.join("seg");
        let len = write_records(&path, &[b"one".as_slice(), b"two"]);
        // Tear the tail by hand.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 2).unwrap();
        drop(file);
        let scan = recover_segment(&path, 1 << 20).unwrap();
        assert_eq!(scan.records.len(), 1);
        let mut w = SegmentWriter::append_to(&path, scan.valid_len).unwrap();
        w.append(b"three").unwrap();
        w.sync().unwrap();
        let scan = scan_segment(&path, 1 << 20).unwrap();
        assert_eq!(scan.records, vec![b"one".to_vec(), b"three".to_vec()]);
        assert_eq!(scan.torn_bytes, 0);
    }
}
