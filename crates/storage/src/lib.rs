//! # rmon-storage — the durable oplog engine
//!
//! The paper's prototype keeps its recorded history and fault reports
//! in memory; this crate gives the runtime an *operations-grade*
//! journal: an append-only, CRC-framed, segmented file log with
//! torn-tail crash recovery, size-based rotation, count-based
//! retention, and a differential replayer that re-runs detection over
//! the persisted log and checks it reproduces the live verdicts.
//!
//! The wire format and the sink traits live in [`rmon_core::oplog`]
//! (so `rmon-rt` journals through `Arc<dyn EventSink>` without
//! depending on this crate); the on-disk format is specified in
//! `docs/STORAGE.md`, and `docs/OPERATIONS.md` covers tuning.
//!
//! ## Layers
//!
//! * [`frame`] — the `[len][crc32][payload]` frame codec, shared
//!   between segment files and `rmon-net`'s wire protocol (including
//!   the incremental [`FrameBuf`] decoder sockets need).
//! * [`segment`] — one segment file: frames behind a magic header,
//!   scan / recover / append.
//! * [`oplog`] — the [`Oplog`] engine: a directory of segments named
//!   by first LSN, rotation, retention, fsync policy, and the
//!   [`Oplog::compact_sealed`] archive pass.
//! * [`sink`] — [`DurableSink`]: both core sink traits over one
//!   oplog; what a runtime plugs in.
//! * [`replay`] — the differential replayer and its
//!   [`ReplayOutcome`] acceptance check.
//!
//! ## Example
//!
//! ```
//! use rmon_core::oplog::{EventSink, ViolationSink};
//! use rmon_core::{FaultReport, MonitorId, Nanos};
//! use rmon_storage::{DurableSink, OplogConfig};
//! use std::collections::HashMap;
//!
//! let dir = std::env::temp_dir().join(format!("oplog-doc-{}", std::process::id()));
//! let sink = DurableSink::open(&dir, OplogConfig::default())?;
//! sink.append_epoch(Nanos::ZERO)?;
//! sink.append_register(MonitorId::new(0), "mailbox", Nanos::new(1))?;
//! sink.append_checkpoint(Nanos::new(2), &HashMap::new(), &FaultReport::default())?;
//! EventSink::sync(&sink)?;
//! assert_eq!(sink.next_lsn(), 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compact;
pub mod frame;
pub mod oplog;
pub mod replay;
pub mod segment;
pub mod sink;

pub use compact::CompactReport;
pub use frame::{FrameBuf, FrameError};
pub use oplog::{FsyncPolicy, Oplog, OplogConfig, ReadReport, RecoveryReport};
pub use replay::{replay_dir, replay_records, verdict_keys, ReplayOutcome, SpecResolver};
pub use segment::{scan_segment, scan_segment_bytes, SegmentScan};
pub use sink::DurableSink;
