//! Differential replay: re-running detection over a persisted journal
//! and checking that it reproduces the recorded verdict sequence.
//!
//! The journal stores the complete detection *inputs* — registration
//! order, every drained event window, the observed snapshots each
//! checkpoint compared against, and the checking times — so a fresh
//! [`Detector`] driven over them must reach exactly the verdicts the
//! live run reached (detection is deterministic given its inputs; only
//! the wall-clock `detected_at` stamps differ). [`ReplayOutcome`]
//! carries both verdict sets and compares them on the repo's canonical
//! violation key `(monitor, pid, event_seq, rule)`.
//!
//! ## Commit protocol
//!
//! `Events` and `Realtime` records are *staged* until the following
//! `Checkpoint` record commits them (see `rmon_core::oplog`). Staged
//! records with no committing checkpoint — the tail a crash leaves, or
//! records orphaned by a restart's `Epoch` — are discarded and counted
//! in [`ReplayOutcome::uncommitted_records`]. Each `Epoch` starts a
//! fresh detector: monitor ids and event sequence numbers restart
//! behind it.
//!
//! ## What replay needs from the caller
//!
//! Monitor *declarations* are code, not data: the journal records only
//! each monitor's name, and the caller resolves names back to
//! [`MonitorSpec`]s. Names that do not resolve are collected in
//! [`ReplayOutcome::unresolved`] (and fail [`ReplayOutcome::matches`]).
//! The [`DetectorConfig`] must be the live run's — timer verdicts
//! depend on it.
//!
//! Exact reproduction additionally requires the log to be complete from
//! its first epoch: a retention policy that deleted old segments has
//! discarded inputs (see [`crate::oplog::ReadReport::first_lsn`]).

use crate::oplog::{Oplog, ReadReport};
use rmon_core::detect::Detector;
use rmon_core::oplog::{decode_record, Record};
use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, Pid, RuleId, Violation};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Resolves a journaled monitor registration back to its declaration.
/// Invoked once per `Register` record with the id the live runtime
/// assigned and the declared name.
pub type SpecResolver<'a> = dyn Fn(MonitorId, &str) -> Option<Arc<MonitorSpec>> + 'a;

/// The canonical identity of a violation across runs: wall-clock
/// stamps and message text vary, these four fields do not.
pub type VerdictKey = (MonitorId, Option<Pid>, Option<u64>, RuleId);

/// Sorts violations into their canonical key sequence.
pub fn verdict_keys(violations: &[Violation]) -> Vec<VerdictKey> {
    let mut keys: Vec<VerdictKey> =
        violations.iter().map(|v| (v.monitor, v.pid, v.event_seq, v.rule)).collect();
    keys.sort_unstable();
    keys
}

/// What a differential replay produced. Built by [`replay_records`] /
/// [`replay_dir`]; [`ReplayOutcome::matches`] is the acceptance check.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// Every committed verdict the journal recorded: realtime records
    /// plus checkpoint-report violations, in log order.
    pub recorded: Vec<Violation>,
    /// Every verdict the fresh detector produced over the same inputs.
    pub recomputed: Vec<Violation>,
    /// Events replayed through the detector (committed windows only).
    pub events_replayed: u64,
    /// Committed checkpoints replayed.
    pub checkpoints: u64,
    /// Epoch (runtime attach) records seen.
    pub epochs: u64,
    /// Staged `Events`/`Realtime` records discarded for lack of a
    /// committing checkpoint (crash tails, restart orphans).
    pub uncommitted_records: u64,
    /// Records appearing before the first `Epoch` — a log whose head
    /// was retired by retention; replay of the remainder is best-effort.
    pub pre_epoch_records: u64,
    /// Monitor names the resolver could not map to a spec.
    pub unresolved: Vec<String>,
}

impl ReplayOutcome {
    /// Whether replay reproduced the recorded verdict sequence exactly:
    /// every spec resolved and the canonical key sets are equal.
    pub fn matches(&self) -> bool {
        self.unresolved.is_empty() && verdict_keys(&self.recorded) == verdict_keys(&self.recomputed)
    }

    /// A diagnostic for the first divergence, if any.
    pub fn mismatch(&self) -> Option<String> {
        if let Some(name) = self.unresolved.first() {
            return Some(format!("unresolved monitor spec {name:?}"));
        }
        let recorded = verdict_keys(&self.recorded);
        let recomputed = verdict_keys(&self.recomputed);
        if recorded == recomputed {
            return None;
        }
        let i = recorded.iter().zip(&recomputed).take_while(|(a, b)| a == b).count();
        Some(format!(
            "verdicts diverge at index {i}: recorded {:?} vs recomputed {:?} \
             ({} recorded, {} recomputed)",
            recorded.get(i),
            recomputed.get(i),
            recorded.len(),
            recomputed.len(),
        ))
    }
}

/// Replays a decoded record stream through a fresh detector per epoch.
/// See the module docs for the protocol.
pub fn replay_records(
    records: &[Record],
    cfg: DetectorConfig,
    resolve: &SpecResolver<'_>,
) -> ReplayOutcome {
    let mut out = ReplayOutcome::default();
    let mut det: Option<Detector> = None;
    let mut staged_events: Vec<Event> = Vec::new();
    let mut staged_realtime: Vec<Violation> = Vec::new();
    let mut staged: u64 = 0;
    for record in records {
        match record {
            Record::Epoch { .. } => {
                out.uncommitted_records += staged;
                staged = 0;
                staged_events.clear();
                staged_realtime.clear();
                det = Some(Detector::new(cfg));
                out.epochs += 1;
            }
            Record::Register { monitor, name, time } => {
                let Some(det) = det.as_mut() else {
                    out.pre_epoch_records += 1;
                    continue;
                };
                match resolve(*monitor, name) {
                    Some(spec) => det.register_empty(*monitor, spec, *time),
                    None => out.unresolved.push(name.clone()),
                }
            }
            Record::Events(events) => {
                if det.is_none() {
                    out.pre_epoch_records += 1;
                    continue;
                }
                staged_events.extend_from_slice(events);
                staged += 1;
            }
            Record::Realtime(violations) => {
                if det.is_none() {
                    out.pre_epoch_records += 1;
                    continue;
                }
                staged_realtime.extend_from_slice(violations);
                staged += 1;
            }
            Record::Checkpoint { now, snapshots, report } => {
                let Some(det) = det.as_mut() else {
                    out.pre_epoch_records += 1;
                    continue;
                };
                // Mirror the live ingestion order: events stream through
                // the real-time path first (Algorithm 3), then the
                // barrier replays the window (per-caller watermarks
                // dedupe) and compares against the journaled snapshots.
                for event in &staged_events {
                    det.observe_into(event, &mut out.recomputed);
                }
                out.events_replayed += staged_events.len() as u64;
                let snaps: HashMap<_, _> = snapshots.iter().cloned().collect();
                let recomputed_report = det.checkpoint(*now, &staged_events, &snaps);
                out.recomputed.extend(recomputed_report.violations);
                out.recorded.append(&mut staged_realtime);
                out.recorded.extend(report.violations.iter().cloned());
                staged_events.clear();
                staged = 0;
                out.checkpoints += 1;
            }
        }
    }
    out.uncommitted_records += staged;
    out
}

/// Replays a journal directory: reads every segment (see
/// [`Oplog::read_dir_records`]), decodes the payloads and runs
/// [`replay_records`]. Undecodable payloads end the stream (a CRC-valid
/// frame that does not parse is a format mismatch) — everything up to
/// that point replays.
pub fn replay_dir(
    dir: &Path,
    max_record_bytes: u32,
    cfg: DetectorConfig,
    resolve: &SpecResolver<'_>,
) -> io::Result<(ReplayOutcome, ReadReport)> {
    let (payloads, report) = Oplog::read_dir_records(dir, max_record_bytes)?;
    let mut records = Vec::with_capacity(payloads.len());
    for payload in &payloads {
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(_) => break,
        }
    }
    Ok((replay_records(&records, cfg, resolve), report))
}
