//! The segmented oplog: a directory of append-only segment files with
//! LSN numbering, size-based rotation, count-based retention and
//! torn-tail recovery on open.
//!
//! Segments are named `oplog-<first_lsn:020>.seg`, where `first_lsn` is
//! the log sequence number of the segment's first record — so the
//! directory listing alone orders the log and locates any LSN. Only the
//! highest-numbered segment is ever appended to; rotation seals it and
//! starts a new one. Retention deletes the oldest sealed segments once
//! the directory would exceed `max_segments` files, which bounds disk
//! use at roughly `max_segments × segment_bytes` (one in-flight record
//! may overshoot a segment's soft size cap).

use crate::segment::{
    recover_segment, scan_segment, SegmentScan, SegmentWriter, SEGMENT_HEADER_BYTES,
};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// When appended frames are flushed (`fdatasync`) to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync; the OS page cache decides. Fastest, loses the most
    /// on power failure (a process crash alone loses nothing the page
    /// cache holds).
    Never,
    /// Fsync a segment once, when it is sealed by rotation, and on
    /// explicit [`Oplog::sync`] calls (the runtime syncs at every
    /// checkpoint barrier). The default.
    #[default]
    OnRotate,
    /// Fsync after every append — maximum durability, one disk flush
    /// per record.
    EveryAppend,
}

/// Tuning knobs for an [`Oplog`]. All fields are public; start from
/// `OplogConfig::default()` and override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OplogConfig {
    /// Soft segment size cap in bytes: an append that finds the current
    /// segment at or past this size rotates first. Default 8 MiB.
    pub segment_bytes: u64,
    /// Maximum number of segment files kept (active + sealed); the
    /// oldest sealed segments are deleted past this. Default 8.
    pub max_segments: usize,
    /// Fsync policy. Default [`FsyncPolicy::OnRotate`].
    pub fsync: FsyncPolicy,
    /// Upper bound on one record's payload size; larger appends are
    /// rejected and larger length fields found on disk are treated as
    /// torn. Default 16 MiB.
    pub max_record_bytes: u32,
}

impl Default for OplogConfig {
    fn default() -> Self {
        OplogConfig {
            segment_bytes: 8 << 20,
            max_segments: 8,
            fsync: FsyncPolicy::default(),
            max_record_bytes: 16 << 20,
        }
    }
}

/// What [`Oplog::open`] found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Segment files present at open.
    pub segments: usize,
    /// Whole records recovered from the tail (active) segment.
    pub tail_records: u64,
    /// Torn bytes truncated from the tail segment.
    pub truncated_bytes: u64,
}

/// A directory-backed, append-only, LSN-numbered record log.
///
/// Writers hand [`Oplog::append`] an encoded payload and get back the
/// record's LSN; the engine frames it (see [`crate::segment`]), rotates
/// and retires segments, and applies the [`FsyncPolicy`]. Readers use
/// [`Oplog::read_dir_records`] on the directory — no coordination with
/// the writer beyond the format's crash-consistency rules.
#[derive(Debug)]
pub struct Oplog {
    dir: PathBuf,
    cfg: OplogConfig,
    /// Sealed segments, oldest first: `(first_lsn, path)`.
    sealed: Vec<(u64, PathBuf)>,
    writer: SegmentWriter,
    active_first_lsn: u64,
    active_records: u64,
    next_lsn: u64,
    recovery: RecoveryReport,
    rotated: u64,
    retired: u64,
}

fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("oplog-{first_lsn:020}.seg"))
}

fn parse_segment_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("oplog-")?.strip_suffix(".seg")?;
    if digits.len() != 20 {
        return None;
    }
    digits.parse().ok()
}

/// Lists a directory's segment files sorted by first LSN.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(lsn) = parse_segment_name(&path) {
            out.push((lsn, path));
        }
    }
    out.sort_unstable_by_key(|(lsn, _)| *lsn);
    Ok(out)
}

impl Oplog {
    /// Opens (creating if necessary) the oplog in `dir`, recovering the
    /// active segment's torn tail: the file is truncated back to its
    /// last whole record, so a crash mid-write never leaves a partial
    /// frame in the committed prefix. Sealed segments are not rescanned
    /// here (they were complete at rotation); mid-log corruption
    /// surfaces at read time instead.
    pub fn open(dir: impl Into<PathBuf>, cfg: OplogConfig) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;
        let (writer, active_first_lsn, active_records, recovery) = match segments.pop() {
            None => {
                let path = segment_path(&dir, 0);
                let writer = SegmentWriter::create(&path)?;
                (writer, 0, 0, RecoveryReport { segments: 0, ..Default::default() })
            }
            Some((first_lsn, path)) => {
                let scan = recover_segment(&path, cfg.max_record_bytes)?;
                let recovery = RecoveryReport {
                    segments: segments.len() + 1,
                    tail_records: scan.records.len() as u64,
                    truncated_bytes: scan.torn_bytes,
                };
                if scan.header_ok {
                    let writer =
                        SegmentWriter::append_to(&path, scan.valid_len.max(SEGMENT_HEADER_BYTES))?;
                    (writer, first_lsn, scan.records.len() as u64, recovery)
                } else {
                    // The header itself was destroyed: the segment holds
                    // nothing recoverable. Re-seed it in place.
                    let writer = SegmentWriter::create(&path)?;
                    (writer, first_lsn, 0, recovery)
                }
            }
        };
        let next_lsn = active_first_lsn + active_records;
        Ok(Oplog {
            dir,
            cfg,
            sealed: segments,
            writer,
            active_first_lsn,
            active_records,
            next_lsn,
            recovery,
            rotated: 0,
            retired: 0,
        })
    }

    /// Appends one record payload; returns its LSN. Rotates the active
    /// segment first when it is at or past the size cap, and applies
    /// the retention limit after each rotation.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        if payload.is_empty() || payload.len() > self.cfg.max_record_bytes as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("record payload of {} bytes outside (0, max_record_bytes]", payload.len()),
            ));
        }
        if self.writer.bytes() >= self.cfg.segment_bytes && self.active_records > 0 {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        self.writer.append(payload)?;
        self.next_lsn += 1;
        self.active_records += 1;
        if self.cfg.fsync == FsyncPolicy::EveryAppend {
            self.writer.sync()?;
        }
        Ok(lsn)
    }

    /// Seals the active segment and starts a new one named after the
    /// next LSN, then enforces [`OplogConfig::max_segments`].
    fn rotate(&mut self) -> io::Result<()> {
        if self.cfg.fsync != FsyncPolicy::Never {
            self.writer.sync()?;
        }
        self.sealed.push((self.active_first_lsn, self.writer.path().to_path_buf()));
        self.active_first_lsn = self.next_lsn;
        self.active_records = 0;
        let path = segment_path(&self.dir, self.active_first_lsn);
        self.writer = SegmentWriter::create(&path)?;
        self.rotated += 1;
        while self.sealed.len() + 1 > self.cfg.max_segments.max(1) {
            let (_, oldest) = self.sealed.remove(0);
            fs::remove_file(&oldest)?;
            self.retired += 1;
        }
        Ok(())
    }

    /// Flushes the active segment to durable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }

    /// The LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The first LSN still on disk (older records were retired).
    pub fn first_retained_lsn(&self) -> u64 {
        self.sealed.first().map_or(self.active_first_lsn, |&(lsn, _)| lsn)
    }

    /// Segment files currently on disk (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Rotations performed since open.
    pub fn rotated(&self) -> u64 {
        self.rotated
    }

    /// Segments deleted by retention since open.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// What [`Oplog::open`] found and repaired.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes in the active (append) segment, including its header.
    pub fn active_segment_bytes(&self) -> u64 {
        self.writer.bytes()
    }

    /// Sealed segment paths in LSN order (for the compaction pass).
    pub(crate) fn sealed_paths(&self) -> Vec<PathBuf> {
        self.sealed.iter().map(|(_, p)| p.clone()).collect()
    }

    /// Path of the active (append) segment.
    pub(crate) fn active_path(&self) -> &Path {
        self.writer.path()
    }

    /// The configuration this log was opened with.
    pub(crate) fn config(&self) -> &OplogConfig {
        &self.cfg
    }

    /// Reads every record payload in `dir`, in LSN order, without
    /// opening the log for writing. Returns the payloads plus a
    /// [`ReadReport`] noting where scanning stopped early (torn tails,
    /// mid-log corruption). Memory use is bounded by the retention cap.
    pub fn read_dir_records(
        dir: &Path,
        max_record_bytes: u32,
    ) -> io::Result<(Vec<Vec<u8>>, ReadReport)> {
        let segments = list_segments(dir)?;
        let mut records = Vec::new();
        let mut report = ReadReport {
            segments: segments.len(),
            first_lsn: segments.first().map_or(0, |&(lsn, _)| lsn),
            ..Default::default()
        };
        let last = segments.len().saturating_sub(1);
        for (i, (_, path)) in segments.iter().enumerate() {
            let scan: SegmentScan = scan_segment(path, max_record_bytes)?;
            records.extend(scan.records);
            if scan.torn_bytes > 0 {
                report.torn_bytes += scan.torn_bytes;
                if i != last {
                    // A sealed segment should be complete: bytes after a
                    // bad frame in the middle of the log are real loss,
                    // and later records would be mis-numbered — stop.
                    report.stopped_mid_log = true;
                    break;
                }
            }
        }
        report.records = records.len() as u64;
        Ok((records, report))
    }
}

/// What [`Oplog::read_dir_records`] saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadReport {
    /// Segment files read.
    pub segments: usize,
    /// LSN of the first record read (retention may have retired 0..N).
    pub first_lsn: u64,
    /// Whole records returned.
    pub records: u64,
    /// Bytes skipped as torn/corrupt.
    pub torn_bytes: u64,
    /// Whether scanning stopped at corruption *before* the final
    /// segment (data loss beyond a crash tail).
    pub stopped_mid_log: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rmon-oplog-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_cfg() -> OplogConfig {
        OplogConfig { segment_bytes: 64, max_segments: 3, ..OplogConfig::default() }
    }

    #[test]
    fn lsns_are_dense_and_survive_reopen() {
        let dir = tmp_dir("lsn");
        let mut log = Oplog::open(&dir, OplogConfig::default()).unwrap();
        for i in 0..5u64 {
            assert_eq!(log.append(format!("rec{i}").as_bytes()).unwrap(), i);
        }
        log.sync().unwrap();
        drop(log);
        let mut log = Oplog::open(&dir, OplogConfig::default()).unwrap();
        assert_eq!(log.next_lsn(), 5);
        assert_eq!(log.recovery().tail_records, 5);
        assert_eq!(log.append(b"rec5").unwrap(), 5);
        let (records, report) = Oplog::read_dir_records(&dir, 1 << 20).unwrap();
        assert_eq!(records.len(), 6);
        assert_eq!(report.records, 6);
        assert!(!report.stopped_mid_log);
    }

    #[test]
    fn rotation_seals_and_names_by_first_lsn() {
        let dir = tmp_dir("rotate");
        let mut log = Oplog::open(&dir, small_cfg()).unwrap();
        // 24-byte payloads + 8-byte frame header: two per 64-byte cap.
        for _ in 0..6 {
            log.append(&[7u8; 24]).unwrap();
        }
        assert!(log.rotated() >= 2, "six 32-byte frames must rotate a 64-byte segment");
        let names = list_segments(&dir).unwrap();
        assert_eq!(names.len(), log.segment_count());
        // Each segment's name is the LSN of its first record.
        let (records, _) = Oplog::read_dir_records(&dir, 1 << 20).unwrap();
        assert_eq!(records.len(), 6);
    }

    #[test]
    fn retention_bounds_disk_and_advances_first_lsn() {
        let dir = tmp_dir("retention");
        let mut log = Oplog::open(&dir, small_cfg()).unwrap();
        for _ in 0..20 {
            log.append(&[1u8; 24]).unwrap();
        }
        assert!(log.segment_count() <= 3);
        assert!(log.retired() > 0, "20 frames must retire segments under a 3-file cap");
        assert!(log.first_retained_lsn() > 0);
        let (records, report) = Oplog::read_dir_records(&dir, 1 << 20).unwrap();
        assert_eq!(report.first_lsn, log.first_retained_lsn());
        assert!(records.len() < 20, "old records must be gone");
        assert_eq!(records.len() as u64 + report.first_lsn, 20, "suffix of the log survives");
    }

    #[test]
    fn crash_tail_is_truncated_on_open() {
        let dir = tmp_dir("crash");
        let mut log = Oplog::open(&dir, OplogConfig::default()).unwrap();
        log.append(b"committed-one").unwrap();
        log.append(b"committed-two").unwrap();
        log.sync().unwrap();
        drop(log);
        // Simulate a torn write: append half a frame to the active file.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[42u8; 5]);
        fs::write(&path, &bytes).unwrap();
        let log = Oplog::open(&dir, OplogConfig::default()).unwrap();
        assert_eq!(log.recovery().truncated_bytes, 5);
        assert_eq!(log.recovery().tail_records, 2);
        assert_eq!(log.next_lsn(), 2);
        let (records, report) = Oplog::read_dir_records(&dir, 1 << 20).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.torn_bytes, 0, "open() already truncated the tail");
    }

    #[test]
    fn destroyed_header_reseeds_empty_segment() {
        let dir = tmp_dir("header");
        let mut log = Oplog::open(&dir, OplogConfig::default()).unwrap();
        log.append(b"doomed").unwrap();
        drop(log);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        fs::write(&path, b"not-a-segment").unwrap();
        let mut log = Oplog::open(&dir, OplogConfig::default()).unwrap();
        assert_eq!(log.recovery().tail_records, 0);
        assert_eq!(log.append(b"fresh").unwrap(), 0);
        let (records, _) = Oplog::read_dir_records(&dir, 1 << 20).unwrap();
        assert_eq!(records, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn oversized_and_empty_appends_are_rejected() {
        let dir = tmp_dir("reject");
        let cfg = OplogConfig { max_record_bytes: 16, ..OplogConfig::default() };
        let mut log = Oplog::open(&dir, cfg).unwrap();
        assert!(log.append(&[]).is_err());
        assert!(log.append(&[0u8; 17]).is_err());
        assert!(log.append(&[0u8; 16]).is_ok());
    }

    #[test]
    fn every_append_policy_syncs_without_error() {
        let dir = tmp_dir("fsync");
        let cfg = OplogConfig { fsync: FsyncPolicy::EveryAppend, ..small_cfg() };
        let mut log = Oplog::open(&dir, cfg).unwrap();
        for _ in 0..5 {
            log.append(&[9u8; 24]).unwrap();
        }
        assert_eq!(log.next_lsn(), 5);
    }
}
