//! The CRC frame codec shared by segment files and the wire protocol.
//!
//! One framing, two carriers: a segment file is `[header][frame]*` on
//! disk (see [`crate::segment`]), and an `rmon-net` byte-stream
//! transport is `[frame]*` on a socket. Both use the same frame shape —
//!
//! ```text
//! [len u32 LE | crc32 u32 LE | payload len bytes]
//! ```
//!
//! — with [`rmon_core::oplog::crc32`] over the payload only. Keeping
//! the codec here means the wire format is the journal format: a frame
//! captured off a socket is byte-identical to a frame in a segment
//! file, and both ends are covered by the same corruption tests.
//!
//! [`frame_into`] / [`parse_frame`] are the stateless halves (what the
//! segment writer/scanner use); [`FrameBuf`] is the incremental decoder
//! a socket reader needs, where frames arrive split across arbitrary
//! read boundaries.

use rmon_core::oplog::crc32;
use std::fmt;

/// Frame overhead in bytes (`len` + `crc`).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Appends one framed `payload` to `out`.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.reserve(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One parse step at the head of a frame stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStep {
    /// A whole, CRC-valid frame sits at the head: its payload is
    /// `buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len]` and the
    /// frame occupies `FRAME_HEADER_BYTES + len` bytes in total.
    Frame {
        /// Payload length in bytes.
        len: usize,
    },
    /// The buffer holds only a prefix of a frame — on disk that is a
    /// torn tail, on a socket it means "read more bytes".
    NeedMore,
    /// The head cannot be a valid frame (zero/oversized length or CRC
    /// mismatch) — torn on disk, a protocol error on a socket.
    Invalid(&'static str),
}

/// Examines the head of `buf` for one frame. Never panics on any
/// input; corrupt length fields are bounded by `max_payload` before
/// any allocation or indexing.
pub fn parse_frame(buf: &[u8], max_payload: u32) -> FrameStep {
    if buf.len() < FRAME_HEADER_BYTES {
        return FrameStep::NeedMore;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if len == 0 {
        return FrameStep::Invalid("zero-length frame");
    }
    if len > max_payload as usize {
        return FrameStep::Invalid("frame length exceeds cap");
    }
    if buf.len() - FRAME_HEADER_BYTES < len {
        return FrameStep::NeedMore;
    }
    let payload = &buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
    if crc32(payload) != crc {
        return FrameStep::Invalid("frame crc mismatch");
    }
    FrameStep::Frame { len }
}

/// A frame failed to parse off a byte stream — corruption or a
/// non-speaker on the socket. Unlike a torn segment tail this is not
/// recoverable in place: a stream decoder cannot resynchronise past
/// bad bytes, so the connection must drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameError(pub &'static str);

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame stream error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder for byte-stream transports: feed it
/// whatever the socket returned ([`FrameBuf::extend`]), pop whole
/// payloads ([`FrameBuf::next_frame`]). Consumed bytes are compacted
/// away lazily, so a long-lived connection does not grow the buffer.
///
/// # Examples
///
/// ```
/// use rmon_storage::frame::{frame_into, FrameBuf};
///
/// let mut wire = Vec::new();
/// frame_into(&mut wire, b"hello");
/// frame_into(&mut wire, b"world");
///
/// let mut decoder = FrameBuf::new(1 << 20);
/// // Bytes arrive split at an arbitrary boundary.
/// decoder.extend(&wire[..7]);
/// assert_eq!(decoder.next_frame().unwrap(), None);
/// decoder.extend(&wire[7..]);
/// assert_eq!(decoder.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
/// assert_eq!(decoder.next_frame().unwrap().as_deref(), Some(&b"world"[..]));
/// assert_eq!(decoder.next_frame().unwrap(), None);
/// ```
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Start of unconsumed bytes within `buf`.
    start: usize,
    max_payload: u32,
}

impl FrameBuf {
    /// A decoder rejecting payloads larger than `max_payload` bytes.
    pub fn new(max_payload: u32) -> Self {
        FrameBuf { buf: Vec::new(), start: 0, max_payload }
    }

    /// Feeds raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: drop the consumed prefix when it
        // dominates the buffer.
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next whole payload, `Ok(None)` when more bytes are
    /// needed. An invalid frame is terminal: every subsequent call
    /// returns the same error.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        match parse_frame(&self.buf[self.start..], self.max_payload) {
            FrameStep::Frame { len } => {
                let head = self.start + FRAME_HEADER_BYTES;
                let payload = self.buf[head..head + len].to_vec();
                self.start = head + len;
                Ok(Some(payload))
            }
            FrameStep::NeedMore => Ok(None),
            FrameStep::Invalid(detail) => Err(FrameError(detail)),
        }
    }

    /// Unconsumed bytes currently buffered.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_exact_layout() {
        let mut out = Vec::new();
        frame_into(&mut out, b"abc");
        assert_eq!(out.len(), FRAME_HEADER_BYTES + 3);
        assert_eq!(&out[0..4], &3u32.to_le_bytes());
        assert_eq!(&out[4..8], &crc32(b"abc").to_le_bytes());
        assert_eq!(parse_frame(&out, 1 << 20), FrameStep::Frame { len: 3 });
    }

    #[test]
    fn parse_classifies_every_head_shape() {
        let mut out = Vec::new();
        frame_into(&mut out, b"abcdef");
        // Every strict prefix needs more bytes.
        for cut in 0..out.len() {
            assert_eq!(parse_frame(&out[..cut], 1 << 20), FrameStep::NeedMore, "cut {cut}");
        }
        // Oversized cap and zero length are invalid, not allocations.
        assert!(matches!(parse_frame(&out, 3), FrameStep::Invalid(_)));
        let zero = [0u8; 8];
        assert!(matches!(parse_frame(&zero, 1 << 20), FrameStep::Invalid(_)));
        // A flipped payload byte fails the CRC.
        let mut bad = out.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(parse_frame(&bad, 1 << 20), FrameStep::Invalid(_)));
    }

    #[test]
    fn framebuf_decodes_byte_by_byte() {
        let payloads: Vec<Vec<u8>> = vec![b"x".to_vec(), vec![7u8; 300], b"tail".to_vec()];
        let mut wire = Vec::new();
        for p in &payloads {
            frame_into(&mut wire, p);
        }
        let mut decoder = FrameBuf::new(1 << 20);
        let mut got = Vec::new();
        for &b in &wire {
            decoder.extend(&[b]);
            while let Some(p) = decoder.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn framebuf_error_is_terminal() {
        let mut wire = Vec::new();
        frame_into(&mut wire, b"ok");
        let mut bad = Vec::new();
        frame_into(&mut bad, b"doomed");
        *bad.last_mut().unwrap() ^= 0xFF;
        wire.extend_from_slice(&bad);
        let mut decoder = FrameBuf::new(1 << 20);
        decoder.extend(&wire);
        assert_eq!(decoder.next_frame().unwrap().as_deref(), Some(&b"ok"[..]));
        assert!(decoder.next_frame().is_err());
        assert!(decoder.next_frame().is_err(), "errors must be sticky");
    }
}
