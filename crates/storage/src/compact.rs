//! Sealed-segment archival: dropping committed windows whose inputs no
//! longer affect any replayable verdict.
//!
//! Retention ([`crate::oplog::OplogConfig::max_segments`]) bounds disk
//! by *deleting history* — after it fires, differential replay is
//! best-effort. Compaction reclaims space without giving that up: an
//! epoch whose commits have been superseded by a later `Epoch` record
//! (the runtime restarted and re-registered everything behind it) and
//! whose committed windows recorded **no verdicts** contributes nothing
//! to the replayable verdict sequence — each epoch replays through a
//! fresh detector, so its inputs cannot influence any later epoch's
//! recomputation. [`Oplog::compact_sealed`] drops exactly those
//! records, wholesale per epoch, from sealed segments only.
//!
//! The pass is self-verifying: before rewriting anything it replays the
//! original and the compacted record streams and requires identical
//! canonical verdict keys (recorded *and* recomputed). If the check
//! fails — an unresolvable spec, an undecodable record, any surprise —
//! the log is left untouched and [`CompactReport::skipped`] says why.
//! Epochs that recorded verdicts are never dropped: their windows are
//! the evidence.
//!
//! Rewrites are crash-safe: each affected segment is rebuilt in a
//! `.tmp` file (invisible to segment listing), synced, then renamed
//! over the original. Segment files keep their names — after
//! compaction a name's `first_lsn` records where the segment began in
//! the *original* stream, so LSNs are no longer dense within compacted
//! segments (readers never relied on density inside a file).

use crate::oplog::Oplog;
use crate::replay::{replay_records, verdict_keys, SpecResolver};
use crate::segment::{scan_segment, SegmentWriter};
use rmon_core::oplog::{decode_record, Record};
use rmon_core::DetectorConfig;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What one [`Oplog::compact_sealed`] pass examined, dropped and
/// reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Sealed segments examined.
    pub sealed_segments: usize,
    /// Sealed segments rewritten (their files shrank in place).
    pub segments_rewritten: usize,
    /// Superseded verdict-clean epochs archived away.
    pub epochs_archived: u64,
    /// Records dropped across all rewritten segments.
    pub records_dropped: u64,
    /// Events inside dropped `Events` windows.
    pub events_dropped: u64,
    /// Bytes reclaimed on disk.
    pub bytes_reclaimed: u64,
    /// Whether the before/after replay equivalence check ran and
    /// passed. `false` only together with a [`CompactReport::skipped`]
    /// reason.
    pub verified: bool,
    /// Why the pass declined to change anything, if it did.
    pub skipped: Option<&'static str>,
}

impl CompactReport {
    fn declined(sealed_segments: usize, reason: &'static str) -> CompactReport {
        CompactReport { sealed_segments, skipped: Some(reason), ..CompactReport::default() }
    }
}

impl Oplog {
    /// Archives sealed segments: drops every record of a *superseded,
    /// verdict-clean* epoch (see the module docs in
    /// `crates/storage/src/compact.rs` for
    /// the exact rule and its safety argument), after proving with a
    /// differential replay over `resolve`/`cfg` — which must be the
    /// live run's — that the recorded and recomputed verdict sequences
    /// are unchanged. The active segment is never touched.
    ///
    /// Returns what was examined and reclaimed; on any doubt the pass
    /// declines (`skipped` set, nothing rewritten) rather than risking
    /// replay fidelity. `Err` is reserved for I/O failures.
    pub fn compact_sealed(
        &mut self,
        cfg: DetectorConfig,
        resolve: &SpecResolver<'_>,
    ) -> io::Result<CompactReport> {
        let sealed: Vec<PathBuf> = self.sealed_paths();
        let report = compact_sealed_impl(
            &sealed,
            self.active_path(),
            self.config().max_record_bytes,
            cfg,
            resolve,
        )?;
        Ok(report)
    }
}

pub(crate) fn compact_sealed_impl(
    sealed: &[PathBuf],
    active_path: &Path,
    max_record_bytes: u32,
    cfg: DetectorConfig,
    resolve: &SpecResolver<'_>,
) -> io::Result<CompactReport> {
    let examined = sealed.len();
    if sealed.is_empty() {
        return Ok(CompactReport { verified: true, ..CompactReport::default() });
    }

    // Gather every payload, remembering which sealed segment each came
    // from (`None` marks the active tail, which is read for replay
    // context but never rewritten).
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut origin: Vec<Option<usize>> = Vec::new();
    for (i, path) in sealed.iter().enumerate() {
        let scan = scan_segment(path, max_record_bytes)?;
        if !scan.header_ok || scan.torn_bytes > 0 {
            return Ok(CompactReport::declined(examined, "sealed segment torn or headerless"));
        }
        origin.extend(std::iter::repeat_n(Some(i), scan.records.len()));
        payloads.extend(scan.records);
    }
    let scan = scan_segment(active_path, max_record_bytes)?;
    origin.extend(std::iter::repeat_n(None, scan.records.len()));
    payloads.extend(scan.records);

    let mut records: Vec<Record> = Vec::with_capacity(payloads.len());
    for payload in &payloads {
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(_) => return Ok(CompactReport::declined(examined, "undecodable record")),
        }
    }

    // Epoch spans, and which are droppable: superseded (a later Epoch
    // exists), wholly sealed, and verdict-clean.
    let sealed_count = origin.iter().filter(|o| o.is_some()).count();
    let epoch_starts: Vec<usize> = records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| matches!(r, Record::Epoch { .. }).then_some(i))
        .collect();
    let mut drop = vec![false; records.len()];
    let mut report =
        CompactReport { sealed_segments: examined, verified: true, ..CompactReport::default() };
    for pair in epoch_starts.windows(2) {
        let (start, end) = (pair[0], pair[1]);
        if end > sealed_count {
            continue; // spills into the active segment
        }
        let clean = records[start..end].iter().all(|r| match r {
            Record::Realtime(vs) => vs.is_empty(),
            Record::Checkpoint { report, .. } => {
                report.violations.is_empty() && report.predicted.is_empty()
            }
            _ => true,
        });
        if !clean {
            continue;
        }
        for (i, record) in records.iter().enumerate().take(end).skip(start) {
            drop[i] = true;
            if let Record::Events(events) = record {
                report.events_dropped += events.len() as u64;
            }
        }
        report.epochs_archived += 1;
        report.records_dropped += (end - start) as u64;
    }
    if report.records_dropped == 0 {
        return Ok(report);
    }

    // Prove verdict preservation before touching any file.
    let kept: Vec<Record> =
        records.iter().zip(&drop).filter(|(_, &d)| !d).map(|(r, _)| r.clone()).collect();
    let before = replay_records(&records, cfg, resolve);
    let after = replay_records(&kept, cfg, resolve);
    let preserved = before.unresolved.is_empty()
        && after.unresolved.is_empty()
        && verdict_keys(&before.recorded) == verdict_keys(&after.recorded)
        && verdict_keys(&before.recomputed) == verdict_keys(&after.recomputed);
    if !preserved {
        return Ok(CompactReport::declined(examined, "replay verification failed"));
    }

    // Rewrite each affected segment: header + surviving frames into a
    // `.tmp` sibling (ignored by segment listing), sync, rename over.
    for (i, path) in sealed.iter().enumerate() {
        let affected = origin.iter().zip(&drop).any(|(&o, &d)| o == Some(i) && d);
        if !affected {
            continue;
        }
        let old_len = fs::metadata(path)?.len();
        let mut writer = SegmentWriter::create(&tmp_path(path))?;
        for ((payload, &o), &d) in payloads.iter().zip(&origin).zip(&drop) {
            if o == Some(i) && !d {
                writer.append(payload)?;
            }
        }
        writer.sync()?;
        let new_len = writer.bytes();
        fs::rename(writer.path(), path)?;
        report.bytes_reclaimed += old_len.saturating_sub(new_len);
        report.segments_rewritten += 1;
    }
    // Best-effort directory sync so the renames are durable as a set.
    if let Some(dir) = active_path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(report)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oplog::{Oplog, OplogConfig};
    use crate::replay::replay_dir;
    use rmon_core::detect::Detector;
    use rmon_core::oplog::encode_record;
    use rmon_core::{Event, MonitorId, MonitorSpec, MonitorState, Nanos, Pid, Violation};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rmon-compact-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Tiny segments: every append rotates, so all but the last record
    /// are sealed.
    fn tiny_cfg() -> OplogConfig {
        OplogConfig { segment_bytes: 16, max_segments: 1024, ..OplogConfig::default() }
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig::without_timeouts()
    }

    fn resolver() -> impl Fn(MonitorId, &str) -> Option<Arc<MonitorSpec>> {
        let bb = Arc::new(MonitorSpec::bounded_buffer("mailbox", 4).spec);
        let al = Arc::new(MonitorSpec::allocator("res", 1).spec);
        move |_, name| match name {
            "mailbox" => Some(Arc::clone(&bb)),
            "res" => Some(Arc::clone(&al)),
            _ => None,
        }
    }

    /// One committed epoch built exactly the way a live runtime commits
    /// it (events through the real-time path, then the checkpoint), so
    /// replay reproduces it bit-for-bit.
    fn epoch_records(faulty: bool) -> Vec<Record> {
        let m = MonitorId::new(0);
        let mut det = Detector::new(cfg());
        let mut out = vec![Record::Epoch { time: Nanos::ZERO }];
        let (events, snaps, name): (Vec<Event>, HashMap<MonitorId, MonitorState>, &str) = if faulty
        {
            let al = MonitorSpec::allocator("res", 1);
            det.register_empty(m, Arc::new(al.spec.clone()), Nanos::ZERO);
            // Release without request: a real-time ST-8 verdict.
            (
                vec![Event::enter(1, Nanos::new(10), m, Pid::new(1), al.release, true)],
                HashMap::new(),
                "res",
            )
        } else {
            let bb = MonitorSpec::bounded_buffer("mailbox", 4);
            det.register_empty(m, Arc::new(bb.spec.clone()), Nanos::ZERO);
            let events = vec![
                Event::enter(1, Nanos::new(10), m, Pid::new(1), bb.send, true),
                Event::signal_exit(
                    2,
                    Nanos::new(20),
                    m,
                    Pid::new(1),
                    bb.send,
                    Some(bb.empty_cond),
                    false,
                ),
            ];
            let mut snaps = HashMap::new();
            snaps.insert(m, MonitorState::with_resources(2, 3));
            (events, snaps, "mailbox")
        };
        out.push(Record::Register { monitor: m, name: name.to_string(), time: Nanos::ZERO });
        let mut realtime: Vec<Violation> = Vec::new();
        for e in &events {
            det.observe_into(e, &mut realtime);
        }
        let report = det.checkpoint(Nanos::new(30), &events, &snaps);
        assert_eq!(report.violations.is_empty() && realtime.is_empty(), !faulty);
        out.push(Record::Events(events));
        out.push(Record::Realtime(realtime));
        let snapshots: Vec<(MonitorId, MonitorState)> = snaps.into_iter().collect();
        out.push(Record::Checkpoint { now: Nanos::new(30), snapshots, report });
        out
    }

    fn append_all(log: &mut Oplog, records: &[Record]) {
        for r in records {
            log.append(&encode_record(r)).unwrap();
        }
    }

    #[test]
    fn superseded_clean_epoch_is_archived_with_verdicts_preserved() {
        let dir = tmp_dir("archive");
        let mut log = Oplog::open(&dir, tiny_cfg()).unwrap();
        append_all(&mut log, &epoch_records(false)); // clean, superseded
        append_all(&mut log, &epoch_records(true)); // faulty tail epoch
        log.sync().unwrap();

        let resolve = resolver();
        let (before, _) = replay_dir(&dir, 16 << 20, cfg(), &resolve).unwrap();
        assert!(before.matches(), "{:?}", before.mismatch());
        assert_eq!(before.epochs, 2);

        let report = log.compact_sealed(cfg(), &resolve).unwrap();
        assert!(report.verified && report.skipped.is_none(), "{report:?}");
        assert_eq!(report.epochs_archived, 1);
        assert_eq!(report.records_dropped, 5, "epoch+register+events+realtime+checkpoint");
        assert_eq!(report.events_dropped, 2);
        assert!(report.segments_rewritten > 0);
        assert!(report.bytes_reclaimed > 0);

        // The compacted log replays to the same verdicts.
        let (after, read) = replay_dir(&dir, 16 << 20, cfg(), &resolve).unwrap();
        assert!(after.matches(), "{:?}", after.mismatch());
        assert_eq!(verdict_keys(&after.recorded), verdict_keys(&before.recorded));
        assert_eq!(verdict_keys(&after.recomputed), verdict_keys(&before.recomputed));
        assert_eq!(after.epochs, 1, "the archived epoch is gone");
        assert!(!read.stopped_mid_log);
        assert!(!after.recorded.is_empty(), "the faulty epoch's verdicts survive");

        // And the log still opens and appends.
        drop(log);
        let mut log = Oplog::open(&dir, tiny_cfg()).unwrap();
        log.append(b"x").unwrap();
    }

    #[test]
    fn final_epoch_is_never_archived() {
        let dir = tmp_dir("final");
        let mut log = Oplog::open(&dir, tiny_cfg()).unwrap();
        append_all(&mut log, &epoch_records(false));
        log.sync().unwrap();
        let resolve = resolver();
        let report = log.compact_sealed(cfg(), &resolve).unwrap();
        assert_eq!(report.records_dropped, 0, "{report:?}");
        assert_eq!(report.epochs_archived, 0);
        assert!(report.verified);
        let (outcome, _) = replay_dir(&dir, 16 << 20, cfg(), &resolve).unwrap();
        assert_eq!(outcome.epochs, 1);
    }

    #[test]
    fn epochs_with_verdicts_are_retained() {
        let dir = tmp_dir("retain");
        let mut log = Oplog::open(&dir, tiny_cfg()).unwrap();
        append_all(&mut log, &epoch_records(true)); // faulty, superseded
        append_all(&mut log, &epoch_records(false)); // clean tail
        log.sync().unwrap();
        let resolve = resolver();
        let (before, _) = replay_dir(&dir, 16 << 20, cfg(), &resolve).unwrap();
        let report = log.compact_sealed(cfg(), &resolve).unwrap();
        assert_eq!(report.records_dropped, 0, "verdict evidence must survive: {report:?}");
        let (after, _) = replay_dir(&dir, 16 << 20, cfg(), &resolve).unwrap();
        assert_eq!(verdict_keys(&after.recorded), verdict_keys(&before.recorded));
        assert_eq!(after.epochs, 2);
    }

    #[test]
    fn unresolvable_spec_declines_the_pass() {
        let dir = tmp_dir("decline");
        let mut log = Oplog::open(&dir, tiny_cfg()).unwrap();
        append_all(&mut log, &epoch_records(false));
        append_all(&mut log, &epoch_records(true));
        log.sync().unwrap();
        let report = log.compact_sealed(cfg(), &|_, _| None).unwrap();
        assert_eq!(report.skipped, Some("replay verification failed"));
        assert!(!report.verified);
        assert_eq!(report.segments_rewritten, 0);
        // Nothing changed on disk: the full log still replays.
        let resolve = resolver();
        let (outcome, _) = replay_dir(&dir, 16 << 20, cfg(), &resolve).unwrap();
        assert_eq!(outcome.epochs, 2);
        assert!(outcome.matches(), "{:?}", outcome.mismatch());
    }

    #[test]
    fn compaction_with_no_sealed_segments_is_a_no_op() {
        let dir = tmp_dir("empty");
        let mut log = Oplog::open(&dir, OplogConfig::default()).unwrap();
        append_all(&mut log, &epoch_records(false));
        let report = log.compact_sealed(cfg(), &resolver()).unwrap();
        assert_eq!(report, CompactReport { verified: true, ..CompactReport::default() });
    }
}
