//! [`DurableSink`]: both `rmon-core` sink traits over one segmented
//! [`Oplog`] — the piece a runtime plugs in to journal durably.

use crate::oplog::{Oplog, OplogConfig, RecoveryReport};
use parking_lot::Mutex;
use rmon_core::oplog::{encode_record, EventSink, Record, ViolationSink};
use rmon_core::{Event, FaultReport, MonitorId, MonitorState, Nanos, Violation};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;

/// A durable journal endpoint: implements both [`EventSink`] and
/// [`ViolationSink`] by encoding each record ([`encode_record`]) and
/// appending it to a shared [`Oplog`].
///
/// Both trait objects are usually the *same* `Arc<DurableSink>` — the
/// event and verdict streams then interleave in one totally ordered
/// log, which is what the commit protocol (Events → Realtime →
/// Checkpoint, see `rmon_core::oplog`) and the differential replayer
/// assume. The internal mutex serializes appends; all appends happen on
/// checkpoint/registration paths, never per event.
#[derive(Debug)]
pub struct DurableSink {
    oplog: Mutex<Oplog>,
}

impl DurableSink {
    /// Opens (creating if necessary) the oplog directory, recovering
    /// any torn tail left by a crash. See [`Oplog::open`].
    pub fn open(dir: impl Into<PathBuf>, cfg: OplogConfig) -> io::Result<Self> {
        Ok(DurableSink { oplog: Mutex::new(Oplog::open(dir, cfg)?) })
    }

    fn append(&self, record: &Record) -> io::Result<()> {
        let payload = encode_record(record);
        self.oplog.lock().append(&payload)?;
        Ok(())
    }

    /// What opening found and repaired (torn-tail truncation).
    pub fn recovery(&self) -> RecoveryReport {
        self.oplog.lock().recovery()
    }

    /// The LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.oplog.lock().next_lsn()
    }

    /// Segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.oplog.lock().segment_count()
    }

    /// Segment rotations performed since open.
    pub fn rotated(&self) -> u64 {
        self.oplog.lock().rotated()
    }

    /// Segments deleted by retention since open.
    pub fn retired(&self) -> u64 {
        self.oplog.lock().retired()
    }
}

impl EventSink for DurableSink {
    fn append_epoch(&self, now: Nanos) -> io::Result<()> {
        self.append(&Record::Epoch { time: now })
    }

    fn append_register(&self, monitor: MonitorId, name: &str, now: Nanos) -> io::Result<()> {
        self.append(&Record::Register { monitor, name: name.to_string(), time: now })
    }

    fn append_events(&self, events: &[Event]) -> io::Result<()> {
        self.append(&Record::Events(events.to_vec()))
    }

    fn sync(&self) -> io::Result<()> {
        self.oplog.lock().sync()
    }
}

impl ViolationSink for DurableSink {
    fn append_realtime(&self, violations: &[Violation]) -> io::Result<()> {
        self.append(&Record::Realtime(violations.to_vec()))
    }

    fn append_checkpoint(
        &self,
        now: Nanos,
        snapshots: &HashMap<MonitorId, MonitorState>,
        report: &FaultReport,
    ) -> io::Result<()> {
        let mut snaps: Vec<(MonitorId, MonitorState)> =
            snapshots.iter().map(|(&id, s)| (id, s.clone())).collect();
        snaps.sort_by_key(|(id, _)| *id);
        self.append(&Record::Checkpoint { now, snapshots: snaps, report: report.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::oplog::decode_record;
    use rmon_core::{Pid, ProcName};
    use std::path::Path;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rmon-sink-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn read_records(dir: &Path) -> Vec<Record> {
        let (payloads, report) = Oplog::read_dir_records(dir, 16 << 20).unwrap();
        assert!(!report.stopped_mid_log);
        payloads.iter().map(|p| decode_record(p).unwrap()).collect()
    }

    #[test]
    fn both_streams_interleave_in_one_log() {
        let dir = tmp_dir("interleave");
        let sink = DurableSink::open(&dir, OplogConfig::default()).unwrap();
        let m = MonitorId::new(0);
        sink.append_epoch(Nanos::new(1)).unwrap();
        sink.append_register(m, "alloc", Nanos::new(2)).unwrap();
        let events = [Event::enter(1, Nanos::new(3), m, Pid::new(1), ProcName::new(0), true)];
        sink.append_events(&events).unwrap();
        sink.append_realtime(&[]).unwrap();
        let mut snaps = HashMap::new();
        snaps.insert(m, MonitorState::new(0));
        sink.append_checkpoint(Nanos::new(9), &snaps, &FaultReport::default()).unwrap();
        EventSink::sync(&sink).unwrap();
        assert_eq!(sink.next_lsn(), 5);
        drop(sink);

        let records = read_records(&dir);
        assert_eq!(records.len(), 5);
        assert_eq!(records[0], Record::Epoch { time: Nanos::new(1) });
        assert!(matches!(&records[1], Record::Register { name, .. } if name == "alloc"));
        assert!(matches!(&records[2], Record::Events(evs) if evs.len() == 1));
        assert!(matches!(&records[3], Record::Realtime(vs) if vs.is_empty()));
        assert!(matches!(&records[4], Record::Checkpoint { now, .. } if *now == Nanos::new(9)));

        // Re-opening attaches after the existing records.
        let sink = DurableSink::open(&dir, OplogConfig::default()).unwrap();
        assert_eq!(sink.next_lsn(), 5);
        assert_eq!(sink.recovery().tail_records, 5);
    }

    #[test]
    fn vector_clock_stamps_and_predictions_round_trip_through_disk() {
        use rmon_core::{PredictedViolation, RuleId, VClock, Violation};

        let dir = tmp_dir("vclock");
        let sink = DurableSink::open(&dir, OplogConfig::default()).unwrap();
        let m = MonitorId::new(0);
        let mut vc = VClock::for_slot(2);
        vc.tick();
        vc.tick();
        let stamped =
            Event::enter(1, Nanos::new(3), m, Pid::new(1), ProcName::new(0), true).with_vc(vc);
        let plain = Event::enter(2, Nanos::new(4), m, Pid::new(2), ProcName::new(0), false);
        sink.append_events(&[stamped, plain]).unwrap();

        let mut report = FaultReport::default();
        report.predicted.push(PredictedViolation {
            violation: Violation::new(m, RuleId::St8HoldTimeout, Nanos::new(9), "predicted"),
            witness: vec![2, 1],
        });
        sink.append_checkpoint(Nanos::new(9), &HashMap::new(), &report).unwrap();
        EventSink::sync(&sink).unwrap();
        drop(sink);

        let records = read_records(&dir);
        let Record::Events(evs) = &records[0] else { panic!("{records:?}") };
        assert_eq!(evs[0].vc, vc, "carried stamp must survive the disk round-trip");
        assert_eq!(evs[0].vc.owner(), Some(2));
        assert!(!evs[1].vc.is_set(), "unset stamps stay unset");
        let Record::Checkpoint { report: got, .. } = &records[1] else { panic!("{records:?}") };
        assert_eq!(got.predicted.len(), 1);
        assert_eq!(got.predicted[0].witness, vec![2, 1]);
        assert_eq!(got.predicted[0].violation.rule, RuleId::St8HoldTimeout);
    }
}
