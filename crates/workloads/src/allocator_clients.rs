//! Resource-allocator client mixes: correct cycles plus the three
//! user-process-level fault patterns of §2.2 III.

use rmon_core::{MonitorId, Nanos};
use rmon_sim::{Script, SimBuilder, SimConfig};

/// Which user-process behaviour a client runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientKind {
    /// Correct `request; use; release` cycles.
    Correct {
        /// Number of cycles.
        cycles: usize,
    },
    /// Fault U1: releases a right it never acquired.
    ReleaseWithoutRequest,
    /// Fault U2: acquires and never releases (holds for `busy`).
    NeverRelease {
        /// How long the right is held.
        busy: Nanos,
    },
    /// Fault U3: requests twice without releasing (self-deadlock on a
    /// single-unit allocator).
    DoubleRequest,
}

/// A mix of allocator clients sharing one multi-unit allocator.
#[derive(Debug, Clone)]
pub struct AllocatorMix {
    /// Units the allocator manages.
    pub units: u64,
    /// Hold time inside each correct cycle.
    pub hold: Nanos,
    /// The clients.
    pub clients: Vec<ClientKind>,
}

impl AllocatorMix {
    /// A correct mix: `n` clients, `cycles` cycles each.
    pub fn correct(units: u64, n: usize, cycles: usize) -> Self {
        AllocatorMix {
            units,
            hold: Nanos::from_micros(5),
            clients: vec![ClientKind::Correct { cycles }; n],
        }
    }

    /// Appends a faulty client.
    pub fn with_client(mut self, kind: ClientKind) -> Self {
        self.clients.push(kind);
        self
    }

    /// Installs the allocator and clients; returns the allocator id.
    pub fn install(&self, builder: &mut SimBuilder) -> MonitorId {
        let al = builder.allocator("allocator", self.units);
        for (i, kind) in self.clients.iter().enumerate() {
            let script = match *kind {
                ClientKind::Correct { cycles } => Script::builder()
                    .repeat(cycles, |s| s.request(al).compute(self.hold).release(al))
                    .build(),
                ClientKind::ReleaseWithoutRequest => Script::release_without_request(al),
                ClientKind::NeverRelease { busy } => Script::never_release(al, busy),
                ClientKind::DoubleRequest => Script::double_request(al),
            };
            builder.process(format!("client{i}"), script);
        }
        al
    }

    /// Builds a ready simulation.
    pub fn build_sim(&self, cfg: SimConfig) -> (rmon_sim::Sim, MonitorId) {
        let mut b = SimBuilder::new().with_config(cfg);
        let al = self.install(&mut b);
        (b.build().expect("allocator client scripts are valid"), al)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::{DetectorConfig, RuleId};

    fn det_cfg() -> DetectorConfig {
        DetectorConfig::builder()
            .t_max(Nanos::from_millis(5))
            .t_io(Nanos::from_millis(5))
            .t_limit(Nanos::from_millis(2))
            .check_interval(Nanos::from_millis(1))
            .build()
    }

    #[test]
    fn correct_mix_is_clean() {
        let (mut sim, _) = AllocatorMix::correct(2, 4, 5).build_sim(SimConfig::default());
        let out = rmon_sim::run_with_detection(&mut sim, det_cfg());
        assert!(out.finished);
        assert!(out.is_clean(), "{}", out.combined);
    }

    #[test]
    fn u1_release_without_request_detected() {
        let mix = AllocatorMix::correct(1, 1, 2).with_client(ClientKind::ReleaseWithoutRequest);
        let (mut sim, _) = mix.build_sim(SimConfig::default());
        let out = rmon_sim::run_with_detection(&mut sim, det_cfg());
        assert!(out
            .combined
            .violates_any(&[RuleId::St8ReleaseWithoutRequest, RuleId::St8CallOrder]));
    }

    #[test]
    fn u2_never_release_detected() {
        let mix = AllocatorMix::correct(2, 1, 2)
            .with_client(ClientKind::NeverRelease { busy: Nanos::from_millis(20) });
        let (mut sim, _) = mix.build_sim(SimConfig::default());
        let out = rmon_sim::run_with_detection(&mut sim, det_cfg());
        assert!(out.combined.violates_any(&[RuleId::St8HoldTimeout]), "{}", out.combined);
    }

    #[test]
    fn u3_double_request_detected_in_real_time() {
        let mix = AllocatorMix::correct(1, 1, 1).with_client(ClientKind::DoubleRequest);
        let (mut sim, _) = mix.build_sim(SimConfig::default());
        let out = rmon_sim::run_with_detection(&mut sim, det_cfg());
        assert!(out
            .realtime_violations
            .iter()
            .any(|v| v.rule == RuleId::St8DuplicateRequest || v.rule == RuleId::St8CallOrder));
    }
}
