//! Dining philosophers over resource-access-right-allocator monitors:
//! one single-unit allocator per fork.
//!
//! Two sim variants are provided: the deadlock-free *ordered* protocol
//! (every philosopher picks the lower-numbered fork first) and the
//! classic *naive* protocol (everyone picks left then right), which can
//! deadlock — and whose deadlock the detector flags through the `Tio` /
//! `Tlimit` timers even though no single process violates its own call
//! order.

use rmon_core::{MonitorId, Nanos};
use rmon_sim::{Script, SimBuilder, SimConfig};

/// Shape of a dining-philosophers simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philosophers {
    /// Number of philosophers (and forks).
    pub seats: usize,
    /// Meals each philosopher eats.
    pub meals: usize,
    /// Eating time per meal.
    pub eat: Nanos,
    /// Whether to use the deadlock-free fork ordering.
    pub ordered: bool,
}

impl Default for Philosophers {
    fn default() -> Self {
        Philosophers { seats: 5, meals: 3, eat: Nanos::from_micros(5), ordered: true }
    }
}

impl Philosophers {
    /// Installs forks and philosophers; returns the fork monitor ids.
    pub fn install(&self, builder: &mut SimBuilder) -> Vec<MonitorId> {
        let forks: Vec<MonitorId> =
            (0..self.seats).map(|f| builder.allocator(&format!("fork{f}"), 1)).collect();
        for p in 0..self.seats {
            let left = forks[p];
            let right = forks[(p + 1) % self.seats];
            let (first, second) = if self.ordered && right.index() < left.index() {
                (right, left)
            } else {
                (left, right)
            };
            let script = Script::builder()
                .repeat(self.meals, |s| {
                    s.request(first)
                        .request(second)
                        .compute(self.eat)
                        .release(second)
                        .release(first)
                })
                .build();
            builder.process(format!("philosopher{p}"), script);
        }
        forks
    }

    /// Builds a ready simulation.
    pub fn build_sim(&self, cfg: SimConfig) -> (rmon_sim::Sim, Vec<MonitorId>) {
        let mut b = SimBuilder::new().with_config(cfg);
        let forks = self.install(&mut b);
        (b.build().expect("philosopher scripts are valid"), forks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::{DetectorConfig, RuleId};

    fn det_cfg() -> DetectorConfig {
        DetectorConfig::builder()
            .t_max(Nanos::from_millis(5))
            .t_io(Nanos::from_millis(5))
            .t_limit(Nanos::from_millis(5))
            .check_interval(Nanos::from_millis(1))
            .build()
    }

    #[test]
    fn ordered_philosophers_complete_cleanly() {
        let (mut sim, _) = Philosophers::default().build_sim(SimConfig::default());
        let out = rmon_sim::run_with_detection(&mut sim, det_cfg());
        assert!(out.finished, "ordered protocol must not deadlock");
        assert!(out.is_clean(), "{}", out.combined);
    }

    #[test]
    fn naive_philosophers_deadlock_is_flagged_by_timers() {
        // Round-robin scheduling walks every philosopher through
        // "pick left" before any picks right: the classic circular
        // wait.
        let w = Philosophers { ordered: false, meals: 1, ..Default::default() };
        let cfg = SimConfig { max_time: Nanos::from_millis(50), ..SimConfig::default() };
        let (mut sim, _) = w.build_sim(cfg);
        let out = rmon_sim::run_with_detection(&mut sim, det_cfg());
        assert!(!out.finished, "naive protocol must deadlock under round-robin");
        assert!(
            out.combined.violates_any(&[RuleId::St6EntryTimeout, RuleId::St8HoldTimeout]),
            "{}",
            out.combined
        );
    }

    #[test]
    fn ordered_under_random_seeds_stays_clean() {
        for seed in 0..5 {
            let (mut sim, _) = Philosophers::default().build_sim(SimConfig::random_seeded(seed));
            let out = rmon_sim::run_with_detection(&mut sim, det_cfg());
            assert!(out.finished && out.is_clean(), "seed {seed}: {}", out.combined);
        }
    }
}
