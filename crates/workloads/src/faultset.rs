//! The canonical fault-injection campaign: one scenario per taxonomy
//! class, across seeds — the deterministic reproduction of the paper's
//! robustness evaluation (§4: *"faults of different kinds … are
//! injected randomly for evaluating the coverage of the fault detection
//! algorithms. The results show that all injected faults are
//! detected."*).

use crate::allocator_clients::{AllocatorMix, ClientKind};
use rmon_core::{DetectorConfig, FaultKind, FaultLevel, Nanos, Pid, RuleId};
use rmon_sim::{InjectionPlan, RunOutcome, Script, Sim, SimBuilder, SimConfig};
use std::collections::BTreeSet;

/// Detector timings used throughout the campaign (virtual time).
pub fn campaign_det_config() -> DetectorConfig {
    DetectorConfig::builder()
        .check_interval(Nanos::from_micros(200))
        .t_max(Nanos::from_millis(2))
        .t_io(Nanos::from_millis(4))
        .t_limit(Nanos::from_millis(3))
        .build()
}

/// Per-fault detector timings. The mutual-exclusion-by-extra-admission
/// classes (W5, X3) leave no trace in the event sequence when the
/// extra process happens to emit no event while co-resident; only a
/// state snapshot taken during the co-residency window sees them. The
/// paper's own §3.3 covers this: *"By properly defining the checking
/// frequency T, the checking can be made more accurate. When T = 1,
/// the checking becomes real-time."* — so those two classes run at
/// T = one kernel step.
pub fn campaign_det_config_for(fault: FaultKind) -> DetectorConfig {
    let base = campaign_det_config();
    match fault {
        FaultKind::WaitMutualExclusion | FaultKind::SignalExitMutualExclusion => {
            DetectorConfig { check_interval: Nanos::from_micros(1), ..base }
        }
        _ => base,
    }
}

/// Simulator configuration for one campaign run. Seed 0 uses
/// round-robin scheduling (the engineered interleaving where every
/// injection site is reachable); other seeds use random scheduling.
pub fn campaign_sim_config(seed: u64) -> SimConfig {
    let mut cfg = if seed == 0 { SimConfig::default() } else { SimConfig::random_seeded(seed) };
    cfg.seed = seed.max(1);
    cfg.max_time = Nanos::from_millis(20);
    cfg
}

/// The contended buffer workload hosting kernel-level injections:
/// capacity-1 buffer, two consumers and two producers.
///
/// With `consumers_first`, the empty-buffer wait path opens on the
/// very first scheduling round; with producers first, the full-buffer
/// wait path does (capacity-1 hand-off otherwise drains every deposit
/// immediately, so a send never observes a full buffer).
fn contended_buffer(builder: &mut SimBuilder, consumers_first: bool) -> rmon_core::MonitorId {
    let buf = builder.bounded_buffer("buffer", 1);
    let consumers = |builder: &mut SimBuilder| {
        for c in 0..2 {
            builder.process(
                format!("consumer{c}"),
                Script::builder().repeat(6, |s| s.receive(buf)).build(),
            );
        }
    };
    let producers = |builder: &mut SimBuilder| {
        for p in 0..2 {
            builder.process(
                format!("producer{p}"),
                Script::builder().repeat(6, |s| s.send(buf)).build(),
            );
        }
    };
    if consumers_first {
        consumers(builder);
        producers(builder);
    } else {
        producers(builder);
        consumers(builder);
    }
    buf
}

/// Builds the simulation for one fault class. Kernel-level faults get
/// the contended buffer plus an injection plan; user-process faults get
/// an allocator mix with one faulty client script.
pub fn build_case(fault: FaultKind, seed: u64) -> Sim {
    let cfg = campaign_sim_config(seed);
    match fault {
        FaultKind::ReleaseWithoutAcquire => {
            let mix = AllocatorMix::correct(1, 2, 3).with_client(ClientKind::ReleaseWithoutRequest);
            mix.build_sim(cfg).0
        }
        FaultKind::ResourceNeverReleased => {
            let mix = AllocatorMix::correct(2, 2, 3)
                .with_client(ClientKind::NeverRelease { busy: Nanos::from_millis(10) });
            mix.build_sim(cfg).0
        }
        FaultKind::DoubleAcquire => {
            let mix = AllocatorMix::correct(1, 1, 2).with_client(ClientKind::DoubleRequest);
            mix.build_sim(cfg).0
        }
        _ => {
            let mut b = SimBuilder::new().with_config(cfg);
            // The full-buffer path needs producers scheduled first.
            let consumers_first = fault != FaultKind::SendExceedsCapacity;
            let buf = contended_buffer(&mut b, consumers_first);
            let plan = match fault {
                // Starvation targets the second consumer, which queues
                // on entry right behind the first.
                FaultKind::WaitEntryStarved => InjectionPlan::on_pid(fault, buf, Pid::new(1)),
                _ => InjectionPlan::once(fault, buf),
            };
            b.inject(plan);
            b.build().expect("campaign scripts are valid")
        }
    }
}

/// The same workload without any injection — the no-false-positive
/// baseline.
pub fn build_clean_baseline(fault: FaultKind, seed: u64) -> Sim {
    match fault.level() {
        FaultLevel::UserProcess => {
            AllocatorMix::correct(2, 3, 3).build_sim(campaign_sim_config(seed)).0
        }
        _ => {
            let mut b = SimBuilder::new().with_config(campaign_sim_config(seed));
            let _ = contended_buffer(&mut b, fault != FaultKind::SendExceedsCapacity);
            b.build().expect("campaign scripts are valid")
        }
    }
}

/// Outcome of one injected run.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The injected fault class.
    pub fault: FaultKind,
    /// The seed used.
    pub seed: u64,
    /// Whether the perturbation actually happened (always true for
    /// user-process faults, which are faulty scripts).
    pub injected: bool,
    /// Whether any violation was reported.
    pub detected: bool,
    /// Whether one of the fault's *primary* rules
    /// ([`FaultKind::detected_by`]) fired.
    pub primary_rule_hit: bool,
    /// Every rule that fired.
    pub rules_hit: BTreeSet<RuleId>,
    /// Virtual time from perturbation to first report (kernel faults
    /// only).
    pub latency: Option<Nanos>,
}

/// Runs one fault class under one seed.
pub fn run_case(fault: FaultKind, seed: u64) -> CaseOutcome {
    let mut sim = build_case(fault, seed);
    let out = rmon_sim::run_with_detection(&mut sim, campaign_det_config_for(fault));
    let injected = match fault.level() {
        FaultLevel::UserProcess => true,
        _ => sim.injector().any_fired(),
    };
    summarize(fault, seed, injected, &out)
}

fn summarize(fault: FaultKind, seed: u64, injected: bool, out: &RunOutcome) -> CaseOutcome {
    let mut rules_hit: BTreeSet<RuleId> = out.combined.violations.iter().map(|v| v.rule).collect();
    rules_hit.extend(out.realtime_violations.iter().map(|v| v.rule));
    let primary_rule_hit = fault.detected_by().iter().any(|r| rules_hit.contains(r));
    CaseOutcome {
        fault,
        seed,
        injected,
        detected: !rules_hit.is_empty(),
        primary_rule_hit,
        rules_hit,
        latency: out.detection_latency(),
    }
}

/// Aggregated campaign results for one fault class.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// The fault class.
    pub fault: FaultKind,
    /// Runs attempted.
    pub runs: usize,
    /// Runs in which the perturbation happened.
    pub injected: usize,
    /// Injected runs in which a violation was reported.
    pub detected: usize,
    /// Injected runs in which a primary rule fired.
    pub primary_hits: usize,
    /// Union of rules that fired across injected runs.
    pub rules: BTreeSet<RuleId>,
    /// Mean detection latency over runs where it was measurable.
    pub mean_latency: Option<Nanos>,
}

/// Runs the full 21-class campaign across `seeds`.
pub fn run_campaign(seeds: &[u64]) -> Vec<CampaignRow> {
    FaultKind::ALL
        .iter()
        .map(|&fault| {
            let mut row = CampaignRow {
                fault,
                runs: 0,
                injected: 0,
                detected: 0,
                primary_hits: 0,
                rules: BTreeSet::new(),
                mean_latency: None,
            };
            let mut latencies = Vec::new();
            for &seed in seeds {
                let outcome = run_case(fault, seed);
                row.runs += 1;
                if outcome.injected {
                    row.injected += 1;
                    if outcome.detected {
                        row.detected += 1;
                    }
                    if outcome.primary_rule_hit {
                        row.primary_hits += 1;
                    }
                    row.rules.extend(outcome.rules_hit.iter().copied());
                    if let Some(l) = outcome.latency {
                        latencies.push(l);
                    }
                }
            }
            if !latencies.is_empty() {
                let sum: u64 = latencies.iter().map(|l| l.as_nanos()).sum();
                row.mean_latency = Some(Nanos::new(sum / latencies.len() as u64));
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_class_fires_and_is_detected_under_seed_zero() {
        for fault in FaultKind::ALL {
            let outcome = run_case(fault, 0);
            assert!(outcome.injected, "{}: perturbation did not fire", fault.code());
            assert!(
                outcome.detected,
                "{}: injected but not detected (rules: {:?})",
                fault.code(),
                outcome.rules_hit
            );
        }
    }

    #[test]
    fn clean_baselines_have_no_false_positives() {
        for fault in FaultKind::ALL {
            for seed in [0, 1] {
                let mut sim = build_clean_baseline(fault, seed);
                let out = rmon_sim::run_with_detection(&mut sim, campaign_det_config_for(fault));
                assert!(out.is_clean(), "{} baseline seed {seed}: {}", fault.code(), out.combined);
            }
        }
    }

    #[test]
    fn campaign_aggregates_across_seeds() {
        let rows = run_campaign(&[0, 1]);
        assert_eq!(rows.len(), 21);
        for row in &rows {
            assert_eq!(row.runs, 2);
            assert!(row.injected >= 1, "{}: never fired", row.fault.code());
            assert_eq!(
                row.detected,
                row.injected,
                "{}: injected but undetected runs exist ({} vs {})",
                row.fault.code(),
                row.detected,
                row.injected
            );
        }
    }
}
