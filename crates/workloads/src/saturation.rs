//! Saturation workload: **thousands of concurrent producer threads**
//! against one detection backend — the stress shape the asynchronous
//! instrumentation modes exist for.
//!
//! Every producer thread owns one single-unit allocator monitor and
//! streams a clean request/release loop through its own
//! [`ProducerHandle`](rmon_core::detect::ProducerHandle) — the
//! multi-producer ingestion front-end at a scale where the *blocking*
//! hand-off itself becomes the bottleneck: with bounded shard inboxes
//! and far more producers than shard workers, synchronous
//! ([`Mode::Sync`](rmon_core::Mode)) ingestion parks monitored threads
//! on full inboxes, while an asynchronous backend
//! ([`rmon_core::detect::AsyncBackend`] in `Mode::Async`) absorbs the
//! burst into its unbounded per-shard queues and lets every producer
//! detach immediately.
//!
//! The report separates the two costs the paper's overhead evaluation
//! cares about: the **producer-side** wall time (what instrumentation
//! charges the monitored program — [`SaturationReport::ingest`] and
//! [`SaturationReport::slowest_producer`]) from the **end-to-end** time
//! until every verdict is in ([`SaturationReport::total`]). Both ends
//! assert losslessness: after the closing barrier the backend must have
//! ingested exactly the events the producers offered.

use rmon_core::detect::{CheckpointScope, DetectionBackend};
use rmon_core::{Event, MonitorId, MonitorSpec, Nanos, Pid};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shape of one saturation run.
#[derive(Debug, Clone, Copy)]
pub struct SaturationConfig {
    /// Concurrent producer threads, each owning one monitor and one
    /// producer handle. The acceptance scale is ≥ 1000.
    pub producers: usize,
    /// Clean request/release rounds per producer (4 events each).
    pub rounds: usize,
}

impl Default for SaturationConfig {
    fn default() -> Self {
        SaturationConfig { producers: 1000, rounds: 4 }
    }
}

impl SaturationConfig {
    /// Events the whole run offers to the backend.
    pub fn events(&self) -> u64 {
        (self.producers.max(1) * self.rounds.max(1) * 4) as u64
    }
}

/// Outcome of one saturation run.
#[derive(Debug, Clone, Copy)]
pub struct SaturationReport {
    /// Events offered through producer handles.
    pub produced: u64,
    /// Events the backend had ingested after the closing barrier.
    pub ingested: u64,
    /// Wall time from the first observe until every producer thread
    /// flushed and joined — the aggregate producer-side cost.
    pub ingest: Duration,
    /// The slowest single producer's **observe-loop** wall time: the
    /// worst case of what instrumentation charged a monitored thread's
    /// event path. The closing `flush()` is thread teardown, not a
    /// per-event charge, and is excluded here (it still counts toward
    /// [`SaturationReport::ingest`]). A synchronous backend's blocking
    /// hand-off happens *inside* `observe` whenever a filled batch
    /// meets a full shard inbox, so this is where the sync stall
    /// surfaces.
    pub slowest_producer: Duration,
    /// Ingest plus the closing checkpoint barrier — until every
    /// verdict is in.
    pub total: Duration,
    /// Whether the run surfaced no violation (the workload is clean by
    /// construction, so anything else is a detector or delivery bug).
    pub clean: bool,
}

impl SaturationReport {
    /// Whether every offered event reached the backend.
    pub fn lossless(&self) -> bool {
        self.ingested == self.produced
    }
}

/// The clean per-producer stream: `rounds` request/release rounds on
/// producer `i`'s own allocator monitor, seqs drawn from a disjoint
/// per-producer range so the merged log still has unique ids.
fn producer_stream(i: usize, rounds: usize) -> (MonitorId, Arc<MonitorSpec>, Vec<Event>) {
    let al = MonitorSpec::allocator(format!("sat{i}"), 1);
    let id = MonitorId::new(i as u32);
    let pid = Pid::new(i as u32 + 1);
    let mut events = Vec::with_capacity(rounds * 4);
    let base = (i * rounds * 4) as u64;
    let mut seq = base;
    let mut push = |e: Event| {
        events.push(e);
    };
    for _ in 0..rounds {
        for (proc_name, kind) in
            [(al.request, 0), (al.request, 1), (al.release, 0), (al.release, 1)]
        {
            seq += 1;
            let t = Nanos::new(seq * 10);
            push(if kind == 0 {
                Event::enter(seq, t, id, pid, proc_name, true)
            } else {
                Event::signal_exit(seq, t, id, pid, proc_name, None, false)
            });
        }
    }
    (id, Arc::new(al.spec.clone()), events)
}

/// Runs the saturation workload against `backend`: registers one
/// allocator monitor per producer, spawns `cfg.producers` scoped
/// threads each streaming its clean rounds through its own handle,
/// joins, then closes with a [`CheckpointScope::All`] barrier and the
/// violation drain.
///
/// The backend decides what "observe" costs: a synchronous backend
/// blocks producers on full inboxes, an asynchronous one detaches them
/// — this one driver is the comparison harness for both.
pub fn run_saturation(backend: &dyn DetectionBackend, cfg: &SaturationConfig) -> SaturationReport {
    let producers = cfg.producers.max(1);
    let rounds = cfg.rounds.max(1);
    let streams: Vec<(MonitorId, Arc<MonitorSpec>, Vec<Event>)> =
        (0..producers).map(|i| producer_stream(i, rounds)).collect();
    for (id, spec, _) in &streams {
        backend.register_empty(*id, Arc::clone(spec), Nanos::ZERO);
    }
    let produced = cfg.events();
    let end_time = Nanos::new((produced + 1) * 10);
    let slowest = Mutex::new(Duration::ZERO);
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for (_, _, events) in &streams {
            let slowest = &slowest;
            scope.spawn(move || {
                let p0 = std::time::Instant::now();
                let mut producer = backend.producer();
                for event in events {
                    producer.observe(*event);
                }
                // Time the observe loop only: the flush below is
                // teardown, and for an async handle it may wait on the
                // backend-global queue drain — a cost the monitored
                // thread's event path never pays.
                let took = p0.elapsed();
                producer.flush();
                let mut max = slowest.lock().unwrap_or_else(|p| p.into_inner());
                if took > *max {
                    *max = took;
                }
            });
        }
    });
    let ingest = t0.elapsed();
    let report = backend.checkpoint(CheckpointScope::All, end_time);
    let violations = backend.drain_violations();
    let total = t0.elapsed();
    let stats = backend.stats();
    let slowest_producer = *slowest.lock().unwrap_or_else(|p| p.into_inner());
    SaturationReport {
        produced,
        ingested: stats.total_events(),
        ingest,
        slowest_producer,
        total,
        clean: report.is_clean() && violations.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::detect::{AsyncBackend, ServiceConfig, ShardedBackend};
    use rmon_core::{DetectorConfig, Mode};

    fn cfg(mode: Mode) -> DetectorConfig {
        DetectorConfig { mode, ..DetectorConfig::without_timeouts() }
    }

    #[test]
    fn async_saturation_is_lossless_and_clean() {
        let backend = AsyncBackend::new(cfg(Mode::Async), ServiceConfig::new(2)).with_batch(8);
        let sat = SaturationConfig { producers: 64, rounds: 2 };
        let report = run_saturation(&backend, &sat);
        assert_eq!(report.produced, sat.events());
        assert!(report.lossless(), "{report:?}");
        assert!(report.clean, "{report:?}");
    }

    #[test]
    fn sync_saturation_is_lossless_and_clean() {
        let backend = ShardedBackend::new(cfg(Mode::Sync), ServiceConfig::new(2)).with_batch(8);
        let sat = SaturationConfig { producers: 32, rounds: 2 };
        let report = run_saturation(&backend, &sat);
        assert!(report.lossless(), "{report:?}");
        assert!(report.clean, "{report:?}");
    }

    #[test]
    fn hybrid_saturation_is_lossless_and_clean() {
        let backend =
            AsyncBackend::new(cfg(Mode::Hybrid(Nanos::from_micros(100))), ServiceConfig::new(2))
                .with_batch(8);
        let sat = SaturationConfig { producers: 48, rounds: 2 };
        let report = run_saturation(&backend, &sat);
        assert!(report.lossless(), "{report:?}");
        assert!(report.clean, "{report:?}");
    }

    #[test]
    fn per_producer_streams_are_disjoint() {
        let (id_a, _, a) = producer_stream(0, 3);
        let (id_b, _, b) = producer_stream(1, 3);
        assert_ne!(id_a, id_b);
        let mut seqs: Vec<u64> = a.iter().chain(&b).map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), a.len() + b.len(), "seq ranges must not collide");
    }
}
