//! Soak/chaos driver: a long-running multi-phase workload over the
//! durable oplog, with monitor churn, backpressure storms, injected
//! user-process faults and crash injection between phases — closed by
//! a differential replay of the persisted journal.
//!
//! Each **phase** is one runtime epoch journaling into the same oplog
//! directory: a fresh [`Runtime`] attaches (its `Epoch` record models a
//! process restart), worker threads hammer a shared allocator fleet
//! with the deny-trace fault script (correct cycles interleaved with U1
//! release-without-request and U3 duplicate-request), a churner thread
//! registers and drops short-lived monitors, and the main thread runs
//! [`Runtime::checkpoint_now`] barriers on a fixed cadence while
//! sampling RSS. Backpressure comes from a deliberately undersized
//! sharded backend (tiny ingestion batches), so the producer handles'
//! `try_observe` pushback path runs constantly.
//!
//! Between phases the driver optionally **injects a crash**: it tears
//! the active segment's tail (truncating into, or appending garbage
//! after, the last frames), exactly what a power cut mid-write leaves.
//! The next phase's [`DurableSink::open`] must recover to the last
//! whole record, and the final differential replay must still
//! reproduce every *committed* verdict — torn barriers simply
//! disappear from both sides of the comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmon_core::detect::{ServiceConfig, ShardedBackend};
use rmon_core::{DetectorConfig, MonitorSpec};
use rmon_rt::{OrderPolicy, ResourceAllocator, Runtime};
use rmon_storage::replay::{replay_dir, ReplayOutcome};
use rmon_storage::{DurableSink, OplogConfig, ReadReport};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for one soak run. Start from [`SoakConfig::from_env`] (the CI
/// smoke entry point) or [`SoakConfig::default`] and override fields.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Total wall-clock budget, split evenly across phases. The
    /// `RMON_SOAK_SECS` environment variable overrides it in
    /// [`SoakConfig::from_env`].
    pub duration: Duration,
    /// Runtime epochs (process lifetimes) journaling into one log.
    pub phases: usize,
    /// Worker threads per phase running the fault script.
    pub threads: usize,
    /// Long-lived allocators in the shared fleet.
    pub allocators: usize,
    /// Units per allocator (shared by the churner's monitors).
    pub units: u64,
    /// Checkpoint-barrier cadence.
    pub checkpoint_every: Duration,
    /// Oplog segment size — small, so rotation happens within the run.
    pub segment_bytes: u64,
    /// Whether to tear the journal tail between phases.
    pub inject_crashes: bool,
    /// Seed for the crash-injection choices.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            duration: Duration::from_secs(10),
            phases: 3,
            threads: 4,
            allocators: 8,
            units: 4,
            checkpoint_every: Duration::from_millis(25),
            segment_bytes: 64 << 10,
            inject_crashes: true,
            seed: 0xC0FFEE,
        }
    }
}

impl SoakConfig {
    /// The CI smoke configuration: defaults with the duration taken
    /// from `RMON_SOAK_SECS` (seconds) when set.
    pub fn from_env() -> Self {
        let mut cfg = SoakConfig::default();
        if let Some(secs) = std::env::var("RMON_SOAK_SECS").ok().and_then(|v| v.parse().ok()) {
            cfg.duration = Duration::from_secs(secs);
        }
        cfg
    }
}

/// What a soak run did and whether the journal survived it.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Phases (runtime epochs) completed.
    pub phases: u64,
    /// Checkpoint barriers run across all phases.
    pub checkpoints: u64,
    /// Events recorded across all phases.
    pub events_recorded: u64,
    /// Crash injections performed between phases.
    pub crash_injections: u64,
    /// Torn bytes the per-phase opens truncated (crash recovery work).
    pub recovered_truncated_bytes: u64,
    /// Segment rotations across all phases.
    pub rotated: u64,
    /// Segment files on disk at the end.
    pub segments: usize,
    /// Journal append failures across all phases (should be zero).
    pub journal_errors: u64,
    /// RSS at the first sample, in KiB (0 where `/proc` is absent).
    pub first_rss_kb: u64,
    /// Peak sampled RSS, in KiB (0 where `/proc` is absent).
    pub max_rss_kb: u64,
    /// The closing differential replay over the persisted journal.
    pub replay: ReplayOutcome,
    /// What the replay's segment scan saw.
    pub read: ReadReport,
}

impl SoakReport {
    /// The run's pass criterion: no journal errors, no mid-log
    /// corruption, and the replay reproduced the recorded verdicts.
    pub fn passed(&self) -> bool {
        self.journal_errors == 0 && !self.read.stopped_mid_log && self.replay.matches()
    }
}

/// Resident-set size in KiB from `/proc/self/status`; `None` where the
/// proc filesystem is unavailable (non-Linux hosts).
pub fn rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Tears the newest segment's tail like a crash mid-write would: either
/// truncates into the last frames or appends a partial garbage frame.
/// Returns the bytes torn (negative growth reported as appended bytes).
fn inject_crash(dir: &Path, rng: &mut StdRng) -> io::Result<u64> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segments.sort();
    let Some(path) = segments.pop() else { return Ok(0) };
    let len = fs::metadata(&path)?.len();
    if rng.gen_bool(0.5) && len > 16 {
        // Tear into committed frames: the recovery scan must walk back
        // to the last whole record.
        let cut = rng.gen_range(1..=len.min(96) - 8);
        let file = fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(len - cut)?;
        Ok(cut)
    } else {
        // A frame that never finished: garbage after the valid prefix.
        let garbage: Vec<u8> =
            (0..rng.gen_range(1u8..48)).map(|_| rng.gen_range(0u8..=255)).collect();
        let mut bytes = fs::read(&path)?;
        bytes.extend_from_slice(&garbage);
        fs::write(&path, &bytes)?;
        Ok(garbage.len() as u64)
    }
}

/// One phase: a fresh runtime epoch over the shared journal directory.
/// Returns (checkpoints run, events recorded, journal errors).
fn run_phase(
    dir: &Path,
    cfg: &SoakConfig,
    phase: usize,
    deadline: Instant,
    report: &mut SoakReport,
) -> io::Result<()> {
    let oplog_cfg = OplogConfig {
        segment_bytes: cfg.segment_bytes,
        // Retention stays out of the way: the closing replay needs the
        // full log (a retired head discards detection inputs).
        max_segments: usize::MAX,
        ..OplogConfig::default()
    };
    let sink = Arc::new(DurableSink::open(dir, oplog_cfg)?);
    report.recovered_truncated_bytes += sink.recovery().truncated_bytes;
    let rt = Runtime::builder(DetectorConfig::without_timeouts())
        .journal(Arc::clone(&sink))
        .order_policy(OrderPolicy::Report)
        .park_timeout(Duration::from_millis(500))
        // Undersized ingestion: 2 shards × 4-event batches keeps the
        // producer handles' try_observe pushback path hot.
        .backend_with(|det_cfg, _clock| {
            Arc::new(ShardedBackend::new(det_cfg, ServiceConfig::new(2)).with_batch(4))
        })
        .build();

    let fleet: Vec<ResourceAllocator> = (0..cfg.allocators)
        .map(|i| ResourceAllocator::new(&rt, &format!("soak-{i}"), cfg.units))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::new();
    for _ in 0..cfg.threads {
        let fleet = fleet.clone();
        let stop = Arc::clone(&stop);
        joins.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for al in &fleet {
                    // The deny-trace fault script: correct cycle plus a
                    // U3 duplicate request and a U1 double release.
                    // Report policy lets the faulty calls run; timeouts
                    // under contention are the park safety net.
                    let _ = al.request();
                    let _ = al.request();
                    let _ = al.release();
                    let _ = al.release();
                }
            }
        }));
    }
    // Churner: short-lived monitors register (journaled) and drop,
    // exercising registration under concurrent barriers.
    {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        let units = cfg.units;
        joins.push(std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let al = ResourceAllocator::new(&rt, &format!("churn-{phase}-{i}"), units);
                let _ = al.request();
                let _ = al.release();
                drop(al);
                i += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    while Instant::now() < deadline {
        std::thread::sleep(cfg.checkpoint_every);
        let _ = rt.checkpoint_now();
        report.checkpoints += 1;
        if let Some(rss) = rss_kb() {
            if report.first_rss_kb == 0 {
                report.first_rss_kb = rss;
            }
            report.max_rss_kb = report.max_rss_kb.max(rss);
        }
    }
    stop.store(true, Ordering::Relaxed);
    for j in joins {
        let _ = j.join();
    }
    // Closing barrier: commits every event the workers recorded.
    let _ = rt.checkpoint_now();
    report.checkpoints += 1;
    report.events_recorded += rt.events_recorded();
    report.journal_errors += rt.journal_errors();
    report.rotated += sink.rotated();
    report.segments = sink.segment_count();
    report.phases += 1;
    Ok(())
}

/// Runs the full soak: `cfg.phases` epochs into `dir`, optional crash
/// injection between them, then the closing differential replay.
pub fn run_soak(dir: &Path, cfg: &SoakConfig) -> io::Result<SoakReport> {
    fs::create_dir_all(dir)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = SoakReport {
        phases: 0,
        checkpoints: 0,
        events_recorded: 0,
        crash_injections: 0,
        recovered_truncated_bytes: 0,
        rotated: 0,
        segments: 0,
        journal_errors: 0,
        first_rss_kb: 0,
        max_rss_kb: 0,
        replay: ReplayOutcome::default(),
        read: ReadReport::default(),
    };
    let start = Instant::now();
    let slice = cfg.duration / cfg.phases.max(1) as u32;
    for phase in 0..cfg.phases.max(1) {
        let deadline = start + slice * (phase as u32 + 1);
        run_phase(dir, cfg, phase, deadline, &mut report)?;
        if cfg.inject_crashes {
            // The torn bytes come back through the next open's recovery
            // report (or the closing replay's scan, for the last phase).
            inject_crash(dir, &mut rng)?;
            report.crash_injections += 1;
        }
    }
    // The journal must now reproduce the live verdicts: every monitor
    // in the soak is an allocator with `cfg.units` units, so the spec
    // resolver rebuilds any name from the declaration.
    let units = cfg.units;
    let resolve = move |_id, name: &str| Some(Arc::new(MonitorSpec::allocator(name, units).spec));
    let (replay, read) = replay_dir(
        dir,
        OplogConfig::default().max_record_bytes,
        DetectorConfig::without_timeouts(),
        &resolve,
    )?;
    report.replay = replay;
    report.read = read;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rmon-soak-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn short_soak_survives_crashes_and_replays_exactly() {
        let dir = tmp_dir("short");
        let cfg = SoakConfig {
            duration: Duration::from_millis(900),
            phases: 3,
            threads: 2,
            allocators: 4,
            checkpoint_every: Duration::from_millis(10),
            // Tiny segments force rotation inside a sub-second run.
            segment_bytes: 4 << 10,
            ..SoakConfig::default()
        };
        let report = run_soak(&dir, &cfg).unwrap();
        assert_eq!(report.phases, 3);
        assert_eq!(report.journal_errors, 0);
        assert_eq!(report.crash_injections, 3);
        assert!(report.rotated > 0, "4 KiB segments must rotate: {report:?}");
        assert_eq!(report.replay.epochs, 3, "one epoch per phase: {:?}", report.replay);
        assert!(report.replay.checkpoints > 0);
        assert!(report.replay.events_replayed > 0);
        assert!(
            !report.replay.recorded.is_empty(),
            "the fault script must produce verdicts: {report:?}"
        );
        assert!(report.passed(), "mismatch: {:?}", report.replay.mismatch());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_env_reads_soak_secs() {
        // Avoid cross-test env races: set, read, restore.
        std::env::set_var("RMON_SOAK_SECS", "3");
        let cfg = SoakConfig::from_env();
        std::env::remove_var("RMON_SOAK_SECS");
        assert_eq!(cfg.duration, Duration::from_secs(3));
    }
}
