//! Distributed fleet driver: runs a [`FleetTrace`] through N worker
//! processes' worth of [`RemoteBackend`]s streaming into one
//! [`DetectionService`] — the multi-process mirror of
//! [`drive_fleet_backend`](crate::sweep::drive_fleet_backend).
//!
//! Monitors are partitioned round-robin across the workers, and each
//! worker renumbers its slice from local id 0 — deliberately, so every
//! run exercises the service's remote→global renaming. Events are fed
//! in the trace's global order to whichever worker owns the monitor,
//! through in-process transports (optionally wrapped in the
//! [`rmon_net::harness`] fault injector); the run ends with one fleet
//! checkpoint sweep.
//!
//! All reported ids are translated back into the **fleet namespace**
//! (the trace's own [`MonitorId`]s), so callers compare a distributed
//! outcome directly against a single-process reference run over the
//! same trace.

use crate::sweep::FleetTrace;
use rmon_core::detect::DetectionBackend;
use rmon_core::{MonitorId, MonitorSpec, Nanos, Violation};
use rmon_net::harness::{chaos_pair, ChaosConfig, ChaosController};
use rmon_net::remote::{RemoteBackend, RemoteConfig};
use rmon_net::service::{DetectionService, NameResolver, ServiceConfig, SessionSummary};
use rmon_net::transport::duplex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to shape one distributed run.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Worker sessions the fleet's monitors are partitioned across.
    pub workers: usize,
    /// Fault schedule for every worker→service link (`None` = clean
    /// delivery). The seed is varied per worker so links misbehave
    /// independently.
    pub chaos: Option<ChaosConfig>,
    /// Partition every worker link for the event-index range
    /// `[start, end)` of the stream, healing at `end` — a deterministic
    /// outage in the middle of the run.
    pub partition_window: Option<(usize, usize)>,
    /// Per-worker event-batch size (the `RemoteConfig::batch` knob).
    pub batch: usize,
    /// Deadline for the closing fleet checkpoint sweep.
    pub checkpoint_timeout: Duration,
    /// Optional durable oplog the service tees into (see
    /// [`DetectionService::journal`]): installed before the workers
    /// attach, committed by the closing fleet sweep — the run's log
    /// replays through `rmon_storage::replay_dir`.
    pub journal: Option<Arc<rmon_storage::DurableSink>>,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            workers: 2,
            chaos: None,
            partition_window: None,
            batch: 64,
            checkpoint_timeout: Duration::from_secs(5),
            journal: None,
        }
    }
}

/// What one distributed run produced, in fleet-namespace ids.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Every verdict the service logged (real-time and checkpoint).
    pub verdicts: Vec<Violation>,
    /// Monitors quarantined by the closing sweep (empty on a healthy
    /// run).
    pub quarantined: Vec<MonitorId>,
    /// Per-session operator view, captured before teardown.
    pub sessions: Vec<SessionSummary>,
    /// First observe until the service had ingested the whole stream.
    pub ingest: Duration,
    /// Ingest plus the closing fleet checkpoint.
    pub total: Duration,
}

/// Runs `fleet` through `cfg.workers` remote workers into a
/// [`DetectionService`] over `backend`. See the [module docs](self).
///
/// # Panics
///
/// Panics if the service fails to ingest the full stream within 30
/// seconds (a wedged link under the no-loss fault model is a bug, not
/// an environment condition).
pub fn drive_fleet_distributed(
    fleet: &FleetTrace,
    backend: Arc<dyn DetectionBackend>,
    cfg: &DistributedConfig,
) -> DistributedOutcome {
    let workers = cfg.workers.max(1);
    let by_name: HashMap<String, Arc<MonitorSpec>> =
        fleet.specs.values().map(|s| (s.name.clone(), Arc::clone(s))).collect();
    let resolve: Arc<NameResolver> = Arc::new(move |name: &str| by_name.get(name).cloned());
    let service = DetectionService::new(
        backend,
        resolve,
        ServiceConfig { checkpoint_timeout: cfg.checkpoint_timeout },
    );
    // Install the tee before any worker attaches: the journal's Epoch
    // record must precede every Register the sessions produce.
    if let Some(sink) = &cfg.journal {
        service.journal(Arc::clone(sink));
    }

    // Round-robin partition, worker-local renumbering from 0.
    let mut fleet_ids: Vec<MonitorId> = fleet.specs.keys().copied().collect();
    fleet_ids.sort();
    let mut owned: Vec<Vec<MonitorId>> = vec![Vec::new(); workers];
    for (i, id) in fleet_ids.iter().enumerate() {
        owned[i % workers].push(*id);
    }

    let faulty = cfg.chaos.is_some() || cfg.partition_window.is_some();
    let mut remotes = Vec::with_capacity(workers);
    let mut controllers: Vec<ChaosController> = Vec::new();
    let mut local_of: HashMap<MonitorId, (usize, MonitorId)> = HashMap::new();
    for (w, mine) in owned.iter().enumerate() {
        let (worker_end, service_end) = if faulty {
            let mut chaos = cfg.chaos.unwrap_or_else(|| ChaosConfig::partition_only(0));
            chaos.seed = chaos.seed.wrapping_add(w as u64);
            let (a, b, ctl) = chaos_pair(1 << 16, chaos);
            controllers.push(ctl);
            (a, b)
        } else {
            duplex(1 << 16)
        };
        service.attach(service_end);
        let remote_cfg = RemoteConfig {
            name: format!("w{w}"),
            batch: cfg.batch.max(1),
            checkpoint_timeout: cfg.checkpoint_timeout,
        };
        let remote = RemoteBackend::connect(worker_end, remote_cfg, Nanos::ZERO)
            .expect("in-process connect cannot fail");
        for (j, &fleet_id) in mine.iter().enumerate() {
            let local = MonitorId::new(j as u32);
            let spec = &fleet.specs[&fleet_id];
            remote.register(local, Arc::clone(spec), &spec.empty_state(), Nanos::ZERO);
            local_of.insert(fleet_id, (w, local));
        }
        remotes.push(remote);
    }

    // Stream in global trace order, each event to its owning worker.
    let t0 = Instant::now();
    let mut producers: Vec<_> = remotes.iter().map(|r| r.producer()).collect();
    for (i, event) in fleet.events.iter().enumerate() {
        if let Some((start, end)) = cfg.partition_window {
            if i == start {
                for ctl in &controllers {
                    ctl.partition();
                }
            }
            if i == end {
                for ctl in &controllers {
                    ctl.heal().expect("heal flush");
                }
            }
        }
        let (w, local) = local_of[&event.monitor];
        let mut event = *event;
        event.monitor = local;
        producers[w].observe(event);
    }
    for p in &mut producers {
        p.flush();
    }
    drop(producers);
    // End the chaotic phase: everything held is released, and the
    // checkpoint fan-out below gets clean, timely replies.
    for ctl in &controllers {
        ctl.calm().expect("calm flush");
    }

    // Barrier: the service has ingested every event (per-session
    // counters bump after the producer flush for each batch).
    let expected = fleet.events.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.sessions().iter().map(|s| s.events).sum::<u64>() < expected {
        assert!(Instant::now() < deadline, "service never ingested the full stream");
        std::thread::sleep(Duration::from_millis(1));
    }
    let ingest = t0.elapsed();

    let sweep = service.checkpoint_fleet(fleet.end_time);
    let total = t0.elapsed();

    // Translate global service ids back into the fleet namespace.
    let back: HashMap<(String, MonitorId), MonitorId> = local_of
        .iter()
        .map(|(&fleet_id, &(w, local))| ((format!("w{w}"), local), fleet_id))
        .collect();
    let translate = |global: MonitorId| -> MonitorId {
        let (name, remote) = service.describe(global).expect("verdict on unknown monitor");
        back[&(name, remote)]
    };
    let mut verdicts = service.verdict_log();
    for v in &mut verdicts {
        v.monitor = translate(v.monitor);
    }
    let quarantined: Vec<MonitorId> = sweep.quarantined.iter().map(|&g| translate(g)).collect();
    let sessions = service.sessions();

    for remote in &remotes {
        remote.shutdown();
    }
    service.shutdown();

    DistributedOutcome { verdicts, quarantined, sessions, ingest, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{allocator_fleet_trace, drive_fleet_backend};
    use rmon_core::detect::InlineBackend;
    use rmon_core::DetectorConfig;

    /// Canonical verdict identity: everything but the detection
    /// timestamp (wall-dependent in a distributed run).
    fn keys(vs: &[Violation]) -> Vec<(MonitorId, Option<u32>, Option<u64>, String)> {
        let mut out: Vec<_> = vs
            .iter()
            .map(|v| (v.monitor, v.pid.map(|p| p.index()), v.event_seq, format!("{:?}", v.rule)))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn clean_distributed_run_matches_the_single_process_reference() {
        let fleet = allocator_fleet_trace(6, 4, 1);
        let reference = InlineBackend::new(DetectorConfig::without_timeouts());
        let (report, _, _) = drive_fleet_backend(&fleet, &reference);
        let mut expected = report.violations.clone();
        expected.extend(reference.drain_violations());

        let backend = Arc::new(InlineBackend::new(DetectorConfig::without_timeouts()));
        let outcome = drive_fleet_distributed(&fleet, backend, &DistributedConfig::default());

        assert!(!expected.is_empty(), "the trace must contain faults to compare");
        assert_eq!(keys(&outcome.verdicts), keys(&expected));
        assert!(outcome.quarantined.is_empty());
        assert_eq!(outcome.sessions.len(), 2);
    }
}
