//! Parameter sweeps and synthetic traces for the benchmark harness.
//!
//! Besides the single-monitor window sweeps, this module builds
//! *fleet* scenarios — many independent monitors interleaved into one
//! event stream — which are the input material for the sharded
//! detection service ([`rmon_core::detect::ShardedDetector`]): enough
//! concurrent monitors that partitioning them across worker shards
//! actually spreads load.

use crate::producer_consumer::PcWorkload;
use rmon_core::detect::{
    CheckpointScope, DetectionBackend, Detector, ScheduledBackend, SchedulerConfig, ServiceConfig,
    ServiceStats, ShardedBackend, SnapshotProvider, SnapshotTable,
};
use rmon_core::{
    DetectorConfig, Event, FaultReport, MonitorId, MonitorSpec, MonitorState, Nanos, Pid,
};
use rmon_sim::SimConfig;
use std::collections::HashMap;
use std::sync::Arc;

/// A recorded clean trace with everything the detection algorithms
/// need: the declaration, the full event window, the initial and final
/// observed states.
#[derive(Debug, Clone)]
pub struct SynthTrace {
    /// The buffer's declaration.
    pub spec: Arc<MonitorSpec>,
    /// The buffer's monitor id.
    pub monitor: MonitorId,
    /// The full event sequence.
    pub events: Vec<Event>,
    /// Observed state before the first event.
    pub initial: MonitorState,
    /// Observed state at the end of the run.
    pub final_state: MonitorState,
    /// Virtual end time.
    pub end_time: Nanos,
}

/// Runs a producer/consumer workload to completion and captures its
/// trace — input material for detector benchmarks and differential
/// tests.
///
/// # Panics
///
/// Panics if the workload does not finish (it always does: the item
/// counts are balanced).
pub fn pc_trace(items_per_producer: usize, seed: u64) -> SynthTrace {
    let workload = PcWorkload { items_per_producer, ..PcWorkload::default() };
    let cfg = if seed == 0 { SimConfig::default() } else { SimConfig::random_seeded(seed) };
    let mut b = rmon_sim::SimBuilder::new().with_config(cfg).with_full_trace();
    let buf = workload.install(&mut b);
    let mut sim = b.build().expect("pc workload valid");
    assert!(rmon_sim::run_plain(&mut sim), "balanced producer/consumer must finish");
    let spec = sim
        .monitors()
        .iter()
        .find(|m| m.id == buf)
        .map(|m| Arc::clone(&m.spec))
        .expect("buffer exists");
    let initial = spec.empty_state();
    SynthTrace {
        monitor: buf,
        events: sim.full_trace().to_vec(),
        initial,
        final_state: sim.snapshot(buf).expect("buffer exists"),
        end_time: sim.clock(),
        spec,
    }
}

/// Event-window sizes used by the detector-cost sweep.
pub const WINDOW_SIZES: [usize; 4] = [64, 256, 1024, 4096];

/// Produces traces whose event counts are at least the requested
/// window sizes (items are scaled until the trace is long enough).
pub fn window_sweep(seed: u64) -> Vec<(usize, SynthTrace)> {
    WINDOW_SIZES
        .iter()
        .map(|&target| {
            // Each send/receive is 2 events; 2 producers.
            let mut items = target / 8 + 1;
            loop {
                let trace = pc_trace(items, seed);
                if trace.events.len() >= target {
                    break (target, trace);
                }
                items *= 2;
            }
        })
        .collect()
}

/// A fleet of independent monitors whose traces are interleaved into
/// one event stream — the sharded service's natural diet.
#[derive(Debug, Clone)]
pub struct FleetTrace {
    /// Declaration of every monitor in the fleet.
    pub specs: HashMap<MonitorId, Arc<MonitorSpec>>,
    /// The interleaved, globally re-sequenced event stream.
    pub events: Vec<Event>,
    /// Final observed state of every monitor.
    pub snapshots: HashMap<MonitorId, MonitorState>,
    /// Virtual end time (max across member traces).
    pub end_time: Nanos,
}

impl FleetTrace {
    /// Number of monitors in the fleet.
    pub fn monitors(&self) -> usize {
        self.specs.len()
    }

    /// A consistency-gated [`SnapshotTable`] over the fleet's **final**
    /// observed states: each monitor's snapshot is gated on its total
    /// event count, so a backend that checkpoints *during* the drive
    /// (scheduled sweeps, [`drive_fleet_checkpointed`]) defers the
    /// Algorithm-1/2 comparison until its replay has consumed the whole
    /// stream — mid-drive sweeps stay replay-and-timers-only instead of
    /// comparing a half-ingested trace against the end state.
    pub fn snapshot_table(&self) -> Arc<SnapshotTable> {
        let table = Arc::new(SnapshotTable::from_snapshots(self.snapshots.clone()));
        let mut counts: HashMap<MonitorId, u64> = HashMap::new();
        for event in &self.events {
            *counts.entry(event.monitor).or_insert(0) += 1;
        }
        for (&monitor, &count) in &counts {
            table.expect_events(monitor, count);
        }
        table
    }
}

/// Builds a fleet of `monitors` independent producer/consumer traces
/// (each `items_per_producer` deep, seeds derived from `seed`),
/// remapped to distinct [`MonitorId`]s and interleaved round-robin so
/// consecutive events usually belong to *different* monitors — the
/// worst case for a per-monitor cache, the common case for a shared
/// ingestion pipeline.
pub fn fleet_trace(monitors: usize, items_per_producer: usize, seed: u64) -> FleetTrace {
    let monitors = monitors.max(1);
    let mut specs = HashMap::new();
    let mut snapshots = HashMap::new();
    let mut end_time = Nanos::ZERO;
    let mut streams: Vec<std::vec::IntoIter<Event>> = Vec::with_capacity(monitors);
    for i in 0..monitors {
        let member_seed = seed.wrapping_mul(31).wrapping_add(i as u64 + 1);
        let trace = pc_trace(items_per_producer, member_seed);
        let id = MonitorId::new(i as u32);
        specs.insert(id, Arc::clone(&trace.spec));
        snapshots.insert(id, trace.final_state.clone());
        if trace.end_time > end_time {
            end_time = trace.end_time;
        }
        let remapped: Vec<Event> = trace
            .events
            .into_iter()
            .map(|mut e| {
                e.monitor = id;
                e
            })
            .collect();
        streams.push(remapped.into_iter());
    }
    // Round-robin interleave, re-assigning the global sequence so the
    // merged stream has one total order.
    let mut events = Vec::new();
    let mut seq = 0u64;
    let mut live = true;
    while live {
        live = false;
        for stream in &mut streams {
            if let Some(mut e) = stream.next() {
                seq += 1;
                e.seq = seq;
                events.push(e);
                live = true;
            }
        }
    }
    FleetTrace { specs, events, snapshots, end_time }
}

/// A deterministic **faulty** fleet: `monitors` single-unit resource
/// allocators, each worked by two callers over `rounds` rounds, with
/// user-process faults injected on a fixed schedule derived from
/// `seed` — duplicate requests (fault U3 / ST-8a) while the right is
/// held, and releases without a preceding request (fault U1 / ST-8b).
///
/// The member streams are interleaved round-robin and re-sequenced
/// exactly like [`fleet_trace`], so the result feeds the same drivers.
/// No snapshots are provided (pure event-stream mode): every reported
/// violation is a deterministic function of the events, which is what
/// makes this the input material for backend *equivalence* tests —
/// inline, sharded and scheduled backends must reproduce the identical
/// per-monitor violation sequences.
pub fn allocator_fleet_trace(monitors: usize, rounds: usize, seed: u64) -> FleetTrace {
    let monitors = monitors.max(1);
    let rounds = rounds.max(1);
    let mut specs = HashMap::new();
    let mut streams: Vec<Vec<Event>> = Vec::with_capacity(monitors);
    for i in 0..monitors {
        let al = MonitorSpec::allocator(format!("alloc{i}"), 1);
        let id = MonitorId::new(i as u32);
        specs.insert(id, Arc::new(al.spec.clone()));
        let holder = Pid::new(2 * i as u32 + 1);
        let stranger = Pid::new(2 * i as u32 + 2);
        let mut events = Vec::new();
        for r in 0..rounds {
            let r = r as u64;
            let i = i as u64;
            events.push(Event::enter(0, Nanos::ZERO, id, holder, al.request, true));
            if (r + i + seed).is_multiple_of(3) {
                // U3: request an access right the caller already holds
                // (the attempt queues — `granted: false` — but the
                // order check fires on the call itself).
                events.push(Event::enter(0, Nanos::ZERO, id, holder, al.request, false));
            }
            events.push(Event::signal_exit(0, Nanos::ZERO, id, holder, al.request, None, false));
            events.push(Event::enter(0, Nanos::ZERO, id, holder, al.release, true));
            events.push(Event::signal_exit(0, Nanos::ZERO, id, holder, al.release, None, false));
            if (r + 2 * i + seed).is_multiple_of(4) {
                // U1: release without a preceding request.
                events.push(Event::enter(0, Nanos::ZERO, id, stranger, al.release, false));
            }
        }
        streams.push(events);
    }
    // Round-robin interleave with one global seq order, stamping times
    // on the merged axis.
    let mut iters: Vec<std::vec::IntoIter<Event>> =
        streams.into_iter().map(|v| v.into_iter()).collect();
    let mut events = Vec::new();
    let mut seq = 0u64;
    let mut live = true;
    while live {
        live = false;
        for it in &mut iters {
            if let Some(mut e) = it.next() {
                seq += 1;
                e.seq = seq;
                e.time = Nanos::new(seq * 10);
                events.push(e);
                live = true;
            }
        }
    }
    let end_time = Nanos::new((seq + 1) * 10);
    FleetTrace { specs, events, snapshots: HashMap::new(), end_time }
}

/// Wall-clock split of one fleet drive: `ingest` is the caller-side
/// cost of handing the stream to the detection layer, `total` adds the
/// periodic checkpoint (registration is excluded from both).
#[derive(Debug, Clone, Copy)]
pub struct FleetTiming {
    /// Time to feed every event to the detection layer.
    pub ingest: std::time::Duration,
    /// Ingest plus the checkpoint, i.e. until every verdict is in.
    pub total: std::time::Duration,
}

/// Drives a [`FleetTrace`] through one inline [`Detector`]: observe
/// every event one at a time, then checkpoint against the final
/// snapshots. The single-threaded baseline the sharded path is
/// measured against. Real-time violations are folded into the report.
pub fn drive_inline_fleet(fleet: &FleetTrace) -> (FaultReport, FleetTiming) {
    let mut det = Detector::new(DetectorConfig::without_timeouts());
    for (&id, spec) in &fleet.specs {
        det.register_empty(id, Arc::clone(spec), Nanos::ZERO);
    }
    let mut realtime = Vec::new();
    let t0 = std::time::Instant::now();
    for event in &fleet.events {
        det.observe_into(event, &mut realtime);
    }
    let ingest = t0.elapsed();
    let mut report = det.checkpoint(fleet.end_time, &fleet.events, &fleet.snapshots);
    let total = t0.elapsed();
    report.violations.extend(realtime);
    (report, FleetTiming { ingest, total })
}

/// Drives a [`FleetTrace`] through any [`DetectionBackend`] over **one
/// producer handle** (the single-threaded ingestion shape): registers
/// every monitor, observes the stream event by event through the
/// handle, checkpoints, and returns the merged report (real-time
/// violations folded in) plus the backend's quiescent counters and the
/// timing split.
///
/// This is the same driver loop `rmon-sim`'s `run_with_backend` and
/// the `rmon-rt` runtime use — simulated, synthetic and real-thread
/// traffic all exercise the identical ingestion API.
pub fn drive_fleet_backend(
    fleet: &FleetTrace,
    backend: &dyn DetectionBackend,
) -> (FaultReport, ServiceStats, FleetTiming) {
    for (&id, spec) in &fleet.specs {
        backend.register_empty(id, Arc::clone(spec), Nanos::ZERO);
    }
    let mut producer = backend.producer();
    let t0 = std::time::Instant::now();
    for event in &fleet.events {
        producer.observe(*event);
    }
    producer.flush();
    let ingest = t0.elapsed();
    // checkpoint_window() is a barrier for everything flushed above
    // (per-shard FIFO), so the collector and counters are quiescent
    // afterwards.
    let mut report = backend.checkpoint_window(fleet.end_time, &fleet.events, &fleet.snapshots);
    let total = t0.elapsed();
    report.violations.extend(backend.drain_violations());
    let stats = backend.stats();
    (report, stats, FleetTiming { ingest, total })
}

/// Drives a [`FleetTrace`] through a backend with **`producers`
/// concurrent threads**, each owning its own
/// [`rmon_core::detect::ProducerHandle`]. Monitors are partitioned
/// round-robin across the producers, so each monitor's whole stream
/// stays on one thread (preserving the per-caller ordering
/// precondition) while the threads' batches interleave freely at the
/// shards — the multi-producer ingestion front-end under test.
///
/// `ingest` in the returned timing is the wall time from the first
/// observe until every producer thread has flushed and joined.
pub fn drive_fleet_multi(
    fleet: &FleetTrace,
    backend: &dyn DetectionBackend,
    producers: usize,
) -> (FaultReport, ServiceStats, FleetTiming) {
    let producers = producers.max(1);
    for (&id, spec) in &fleet.specs {
        backend.register_empty(id, Arc::clone(spec), Nanos::ZERO);
    }
    let streams: Vec<Vec<Event>> = {
        let mut streams = vec![Vec::new(); producers];
        for event in &fleet.events {
            streams[event.monitor.index() as usize % producers].push(*event);
        }
        streams
    };
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for stream in &streams {
            scope.spawn(move || {
                let mut producer = backend.producer();
                for event in stream {
                    producer.observe(*event);
                }
                producer.flush();
            });
        }
    });
    let ingest = t0.elapsed();
    let mut report = backend.checkpoint_window(fleet.end_time, &fleet.events, &fleet.snapshots);
    let total = t0.elapsed();
    report.violations.extend(backend.drain_violations());
    let stats = backend.stats();
    (report, stats, FleetTiming { ingest, total })
}

/// Drives a [`FleetTrace`] through a backend using **per-shard scoped
/// checkpoints** instead of one caller-drained window: the fleet's
/// gated [`SnapshotTable`] is registered as the backend's
/// [`SnapshotProvider`], the stream is ingested through one handle,
/// and the final verdict is assembled by sweeping
/// [`CheckpointScope::Shard`] 0..`shards` — each sweep replaying that
/// shard's pending events and running the Algorithm-1/2 snapshot
/// comparison through the provider. No recorded window ever changes
/// hands; this is the ingestion-plus-sweeps shape an embedding runtime
/// with an asynchronous checkpointer has.
///
/// Equivalence with [`drive_fleet_backend`] (same violations, same
/// events checked) is the acceptance property of
/// `tests/checkpoint_equivalence.rs`.
pub fn drive_fleet_checkpointed(
    fleet: &FleetTrace,
    backend: &dyn DetectionBackend,
    shards: usize,
) -> (FaultReport, ServiceStats, FleetTiming) {
    for (&id, spec) in &fleet.specs {
        backend.register_empty(id, Arc::clone(spec), Nanos::ZERO);
    }
    backend.set_snapshot_provider(fleet.snapshot_table() as Arc<dyn SnapshotProvider>);
    let mut producer = backend.producer();
    let t0 = std::time::Instant::now();
    for event in &fleet.events {
        producer.observe(*event);
    }
    producer.flush();
    let ingest = t0.elapsed();
    let mut report = FaultReport::merged(
        (0..shards.max(1))
            .map(|shard| backend.checkpoint(CheckpointScope::Shard(shard), fleet.end_time)),
    );
    let total = t0.elapsed();
    report.violations.extend(backend.drain_violations());
    let stats = backend.stats();
    (report, stats, FleetTiming { ingest, total })
}

/// Drives a [`FleetTrace`] through a fresh [`ShardedBackend`] with the
/// given shard count and per-handle ingest batch.
pub fn drive_sharded_fleet(
    fleet: &FleetTrace,
    shards: usize,
    batch: usize,
) -> (FaultReport, ServiceStats, FleetTiming) {
    let backend =
        ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(shards))
            .with_batch(batch);
    drive_fleet_backend(fleet, &backend)
}

/// Drives a [`FleetTrace`] through a fresh [`ScheduledBackend`] (the
/// sharded service plus the per-shard checkpoint scheduler) with the
/// given shard count and per-handle ingest batch.
pub fn drive_scheduled_fleet(
    fleet: &FleetTrace,
    shards: usize,
    batch: usize,
) -> (FaultReport, ServiceStats, FleetTiming) {
    let backend = ScheduledBackend::new(
        DetectorConfig::without_timeouts(),
        ServiceConfig::new(shards),
        SchedulerConfig::default(),
    )
    .with_batch(batch);
    drive_fleet_backend(fleet, &backend)
}

/// Drives a fleet of **real-thread** allocator monitors from
/// `threads` concurrent OS threads through one [`rmon_rt::Runtime`] —
/// the end-to-end exercise of the sharded recording pipeline: every
/// thread records through its own recorder segment and streams its
/// order-checked events through its own producer handle, with no lock
/// shared between the observing threads. Monitors are partitioned
/// round-robin across the threads (each monitor's traffic stays on one
/// thread, a clean single-holder workload), `rounds` request/release
/// pairs per monitor.
///
/// Returns the final checkpoint report (clean for this workload), the
/// backend's quiescent ingestion counters and the total events
/// recorded.
pub fn drive_rt_fleet(
    rt: &rmon_rt::Runtime,
    monitors: usize,
    threads: usize,
    rounds: usize,
) -> (FaultReport, ServiceStats, u64) {
    let monitors = monitors.max(1);
    let threads = threads.max(1);
    let allocators: Vec<rmon_rt::ResourceAllocator> = (0..monitors)
        .map(|i| rmon_rt::ResourceAllocator::new(rt, &format!("fleet{i}"), 1))
        .collect();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mine: Vec<&rmon_rt::ResourceAllocator> =
                allocators.iter().skip(t).step_by(threads).collect();
            scope.spawn(move || {
                for _ in 0..rounds {
                    for al in &mine {
                        al.request().expect("uncontended request");
                        al.release().expect("uncontended release");
                    }
                }
            });
        }
    });
    let report = rt.checkpoint_now();
    let stats = rt.service_stats();
    (report, stats, rt.events_recorded())
}

/// [`drive_inline_fleet`] without the timing split.
pub fn run_inline_fleet(fleet: &FleetTrace) -> FaultReport {
    drive_inline_fleet(fleet).0
}

/// [`drive_sharded_fleet`] without the timing split.
pub fn run_sharded_fleet(
    fleet: &FleetTrace,
    shards: usize,
    batch: usize,
) -> (FaultReport, ServiceStats) {
    let (report, stats, _) = drive_sharded_fleet(fleet, shards, batch);
    (report, stats)
}

/// A tiny deterministic xorshift for seeded-schedule choices.
struct ScheduleRng(u64);

impl ScheduleRng {
    fn pick(&mut self, n: usize) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 % n as u64) as usize
    }
}

#[derive(Clone, Copy, PartialEq)]
enum SchedPhase {
    NeedRequest,
    InRequest,
    NeedRelease,
    InRelease,
    Done,
}

/// The seeded-schedule driver behind the predictive-detection
/// campaign: a random single-unit-allocator window with the exact
/// event shapes the rt recorder emits. At most one process is inside
/// the monitor at a time; an entry attempt while it is busy records
/// `Enter { granted: false }` and queues (the window's only recorded
/// concurrency — see `rmon_core::detect::predict`), and the queue head
/// is admitted without a second `Enter` when the occupant exits. The
/// interleaving — and with it the amount of commutation freedom the
/// predictive pass gets to search — is a pure function of `seed`.
/// Event `l` has timestamp `10·l` ns.
pub fn seeded_allocator_schedule(
    procs: usize,
    cycles: usize,
    seed: u64,
) -> (rmon_core::spec::AllocatorSpec, Vec<Event>) {
    use std::collections::VecDeque;

    let al = MonitorSpec::allocator("res", 1);
    let monitor = MonitorId::new(0);
    let mut rng = ScheduleRng(seed | 1);
    let mut phase = vec![SchedPhase::NeedRequest; procs];
    let mut left = vec![cycles; procs];
    let mut blocked = vec![false; procs]; // a pending Enter{false} was recorded
    let mut occupant: Option<usize> = None;
    let mut eq: VecDeque<usize> = VecDeque::new();
    let mut events = Vec::new();
    let mut seq = 0u64;
    loop {
        let mut runnable: Vec<usize> = Vec::new();
        if let Some(p) = occupant {
            runnable.push(p);
        }
        for p in 0..procs {
            if matches!(phase[p], SchedPhase::NeedRequest | SchedPhase::NeedRelease) && !blocked[p]
            {
                runnable.push(p);
            }
        }
        if runnable.is_empty() {
            break;
        }
        let p = runnable[rng.pick(runnable.len())];
        seq += 1;
        let t = Nanos::new(seq * 10);
        let pid = Pid::new(p as u32 + 1);
        let admit = |eq: &mut VecDeque<usize>,
                     blocked: &mut [bool],
                     phase: &mut [SchedPhase]|
         -> Option<usize> {
            eq.pop_front().inspect(|&q| {
                blocked[q] = false;
                phase[q] = if phase[q] == SchedPhase::NeedRequest {
                    SchedPhase::InRequest
                } else {
                    SchedPhase::InRelease
                };
            })
        };
        match phase[p] {
            SchedPhase::NeedRequest | SchedPhase::NeedRelease => {
                let proc_name =
                    if phase[p] == SchedPhase::NeedRequest { al.request } else { al.release };
                if occupant.is_none() {
                    events.push(Event::enter(seq, t, monitor, pid, proc_name, true));
                    occupant = Some(p);
                    phase[p] = if phase[p] == SchedPhase::NeedRequest {
                        SchedPhase::InRequest
                    } else {
                        SchedPhase::InRelease
                    };
                } else {
                    events.push(Event::enter(seq, t, monitor, pid, proc_name, false));
                    eq.push_back(p);
                    blocked[p] = true;
                }
            }
            SchedPhase::InRequest => {
                events.push(Event::signal_exit(seq, t, monitor, pid, al.request, None, false));
                phase[p] = SchedPhase::NeedRelease;
                occupant = admit(&mut eq, &mut blocked, &mut phase);
            }
            SchedPhase::InRelease => {
                events.push(Event::signal_exit(seq, t, monitor, pid, al.release, None, false));
                left[p] -= 1;
                phase[p] = if left[p] == 0 { SchedPhase::Done } else { SchedPhase::NeedRequest };
                occupant = admit(&mut eq, &mut blocked, &mut phase);
            }
            SchedPhase::Done => unreachable!("done processes are never runnable"),
        }
    }
    (al, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_trace_is_nonempty_and_consistent() {
        let t = pc_trace(5, 0);
        assert!(!t.events.is_empty());
        assert_eq!(t.final_state.available, t.spec.capacity);
        assert!(t.final_state.running.is_empty());
        // seq strictly increasing
        for w in t.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn seeded_allocator_schedule_is_complete_and_deterministic() {
        use rmon_core::EventKind;
        let (al, w) = seeded_allocator_schedule(3, 2, 42);
        let (_, again) = seeded_allocator_schedule(3, 2, 42);
        assert_eq!(w, again, "same seed, same schedule");
        // Every process finishes every cycle: each of its request and
        // release calls records exactly one Enter (granted or blocked)
        // and one SignalExit.
        assert_eq!(w.len(), 3 * 2 * 4);
        for (i, e) in w.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1, "dense seqs");
        }
        // A single process never contends.
        let (_, solo) = seeded_allocator_schedule(1, 3, 42);
        assert!(solo.iter().all(|e| !matches!(e.kind, EventKind::Enter { granted: false })));
        let _ = al;
    }

    #[test]
    fn window_sweep_meets_targets() {
        for (target, trace) in window_sweep(1) {
            assert!(trace.events.len() >= target, "{target}");
        }
    }

    #[test]
    fn fleet_trace_has_distinct_monitors_and_one_total_order() {
        let fleet = fleet_trace(8, 4, 7);
        assert_eq!(fleet.monitors(), 8);
        assert_eq!(fleet.snapshots.len(), 8);
        assert!(!fleet.events.is_empty());
        for w in fleet.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        let seen: std::collections::HashSet<_> = fleet.events.iter().map(|e| e.monitor).collect();
        assert_eq!(seen.len(), 8, "every monitor contributes events");
    }

    #[test]
    fn clean_fleet_is_clean_inline_and_sharded() {
        let fleet = fleet_trace(8, 3, 7);
        let inline = run_inline_fleet(&fleet);
        assert!(inline.is_clean(), "{inline}");
        for shards in [1, 2, 4] {
            let (report, stats) = run_sharded_fleet(&fleet, shards, 64);
            assert!(report.is_clean(), "shards={shards}: {report}");
            assert_eq!(report.events_checked, inline.events_checked, "shards={shards}");
            assert_eq!(stats.total_events(), fleet.events.len() as u64);
            assert_eq!(stats.shard_count(), shards);
        }
    }

    #[test]
    fn sharded_fleet_spreads_monitors_across_shards() {
        let fleet = fleet_trace(16, 2, 3);
        let (_, stats) = run_sharded_fleet(&fleet, 4, 32);
        assert_eq!(stats.shards.iter().map(|s| s.monitors).sum::<u64>(), 16);
        assert!(stats.active_shards() >= 2, "16 monitors must load ≥2 of 4 shards: {stats:?}");
    }

    #[test]
    fn allocator_fleet_is_deterministic_and_faulty() {
        let a = allocator_fleet_trace(6, 5, 3);
        let b = allocator_fleet_trace(6, 5, 3);
        assert_eq!(a.events, b.events, "same seed, same trace");
        assert_eq!(a.monitors(), 6);
        for w in a.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        let (report, _, _) = drive_sharded_fleet(&a, 2, 64);
        assert!(!report.is_clean(), "the injected U1/U3 faults must be detected");
    }

    #[test]
    fn multi_producer_drive_matches_single_handle() {
        use rmon_core::detect::InlineBackend;
        let fleet = allocator_fleet_trace(8, 4, 1);
        let inline = InlineBackend::new(DetectorConfig::without_timeouts());
        let (want, _, _) = drive_fleet_backend(&fleet, &inline);
        let key = |v: &rmon_core::Violation| (v.monitor, v.pid, v.event_seq, v.rule);
        let mut want_v = want.violations.clone();
        want_v.sort_by_key(key);
        for producers in [2usize, 4] {
            let backend =
                ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(4))
                    .with_batch(7); // misaligned with the per-round event count
            let (got, stats, _) = drive_fleet_multi(&fleet, &backend, producers);
            let mut got_v = got.violations.clone();
            got_v.sort_by_key(key);
            assert_eq!(got_v, want_v, "{producers} producers");
            assert_eq!(stats.total_events(), fleet.events.len() as u64);
        }
    }

    #[test]
    fn rt_fleet_records_from_many_threads_and_stays_clean() {
        use rmon_core::detect::{ServiceConfig, ShardedBackend};
        use std::sync::Arc;
        for (label, rt) in [
            ("inline", rmon_rt::Runtime::new(DetectorConfig::without_timeouts())),
            (
                "sharded+adaptive",
                rmon_rt::Runtime::builder(DetectorConfig::without_timeouts())
                    .backend_with(|cfg, _clock| {
                        Arc::new(
                            ShardedBackend::new(cfg, ServiceConfig::new(2))
                                .with_adaptive_batch(1, 32),
                        )
                    })
                    .build(),
            ),
        ] {
            let (report, stats, events) = drive_rt_fleet(&rt, 8, 4, 25);
            assert!(report.is_clean(), "{label}: {report}");
            assert!(rt.is_clean(), "{label}");
            // 8 monitors × 25 rounds × (request + release) × 2 events.
            assert_eq!(events, 8 * 25 * 4, "{label}");
            // Allocator events go through the real-time (order) path,
            // so the backend ingested every one of them.
            assert_eq!(stats.total_events(), events, "{label}");
        }
    }

    #[test]
    fn checkpointed_drive_matches_window_drive() {
        let key = |v: &rmon_core::Violation| (v.monitor, v.pid, v.event_seq, v.rule);
        // Faulty fleet (no snapshots: pure event-stream) and clean
        // fleet (with snapshots: the Algorithm-1/2 comparison path).
        for (label, fleet) in
            [("faulty", allocator_fleet_trace(8, 4, 3)), ("clean", fleet_trace(8, 3, 7))]
        {
            let window =
                ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(2));
            let (want, _, _) = drive_fleet_backend(&fleet, &window);
            let scoped =
                ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(2));
            let (got, stats, _) = drive_fleet_checkpointed(&fleet, &scoped, 2);
            let mut want_v = want.violations.clone();
            let mut got_v = got.violations.clone();
            want_v.sort_by_key(key);
            got_v.sort_by_key(key);
            assert_eq!(got_v, want_v, "{label}");
            assert_eq!(got.events_checked, want.events_checked, "{label}");
            assert_eq!(stats.total_events(), fleet.events.len() as u64, "{label}");
        }
    }

    #[test]
    fn scheduled_fleet_matches_sharded_fleet() {
        let fleet = fleet_trace(8, 3, 7);
        let (sharded, _, _) = drive_sharded_fleet(&fleet, 2, 64);
        let (scheduled, stats, _) = drive_scheduled_fleet(&fleet, 2, 64);
        assert_eq!(scheduled.events_checked, sharded.events_checked);
        assert_eq!(scheduled.violations, sharded.violations);
        assert_eq!(stats.total_events(), fleet.events.len() as u64);
    }
}
