//! Parameter sweeps and synthetic traces for the benchmark harness.

use crate::producer_consumer::PcWorkload;
use rmon_core::{Event, MonitorId, MonitorSpec, MonitorState, Nanos};
use rmon_sim::SimConfig;
use std::sync::Arc;

/// A recorded clean trace with everything the detection algorithms
/// need: the declaration, the full event window, the initial and final
/// observed states.
#[derive(Debug, Clone)]
pub struct SynthTrace {
    /// The buffer's declaration.
    pub spec: Arc<MonitorSpec>,
    /// The buffer's monitor id.
    pub monitor: MonitorId,
    /// The full event sequence.
    pub events: Vec<Event>,
    /// Observed state before the first event.
    pub initial: MonitorState,
    /// Observed state at the end of the run.
    pub final_state: MonitorState,
    /// Virtual end time.
    pub end_time: Nanos,
}

/// Runs a producer/consumer workload to completion and captures its
/// trace — input material for detector benchmarks and differential
/// tests.
///
/// # Panics
///
/// Panics if the workload does not finish (it always does: the item
/// counts are balanced).
pub fn pc_trace(items_per_producer: usize, seed: u64) -> SynthTrace {
    let workload = PcWorkload { items_per_producer, ..PcWorkload::default() };
    let cfg = if seed == 0 { SimConfig::default() } else { SimConfig::random_seeded(seed) };
    let mut b = rmon_sim::SimBuilder::new().with_config(cfg).with_full_trace();
    let buf = workload.install(&mut b);
    let mut sim = b.build().expect("pc workload valid");
    assert!(rmon_sim::run_plain(&mut sim), "balanced producer/consumer must finish");
    let spec = sim
        .monitors()
        .iter()
        .find(|m| m.id == buf)
        .map(|m| Arc::clone(&m.spec))
        .expect("buffer exists");
    let mut initial = MonitorState::new(spec.cond_count());
    initial.available = spec.capacity;
    SynthTrace {
        monitor: buf,
        events: sim.full_trace().to_vec(),
        initial,
        final_state: sim.snapshot(buf).expect("buffer exists"),
        end_time: sim.clock(),
        spec,
    }
}

/// Event-window sizes used by the detector-cost sweep.
pub const WINDOW_SIZES: [usize; 4] = [64, 256, 1024, 4096];

/// Produces traces whose event counts are at least the requested
/// window sizes (items are scaled until the trace is long enough).
pub fn window_sweep(seed: u64) -> Vec<(usize, SynthTrace)> {
    WINDOW_SIZES
        .iter()
        .map(|&target| {
            // Each send/receive is 2 events; 2 producers.
            let mut items = target / 8 + 1;
            loop {
                let trace = pc_trace(items, seed);
                if trace.events.len() >= target {
                    break (target, trace);
                }
                items *= 2;
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_trace_is_nonempty_and_consistent() {
        let t = pc_trace(5, 0);
        assert!(!t.events.is_empty());
        assert_eq!(t.final_state.available, t.spec.capacity);
        assert!(t.final_state.running.is_empty());
        // seq strictly increasing
        for w in t.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn window_sweep_meets_targets() {
        for (target, trace) in window_sweep(1) {
            assert!(trace.events.len() >= target, "{target}");
        }
    }
}
