//! A readers–writers monitor built directly on [`rmon_rt::Monitor`] —
//! the classic Hoare-style example, declared with a path-expression
//! call order so the generalized ST-8 checking applies to a monitor
//! that is neither a buffer nor a plain allocator.

use rmon_core::{CondId, MonitorSpec, ProcName};
use rmon_rt::{Monitor, MonitorError, Runtime};

#[derive(Debug, Default)]
struct RwInner {
    readers: u32,
    writing: bool,
}

/// A shared resource with reader/writer access discipline, instrumented
/// for run-time fault detection.
///
/// Call order per process is declared as
/// `path ((start_read ; end_read) | (start_write ; end_write))* end`;
/// `start_read`/`start_write` carry the `Request` role and their `end`
/// counterparts the `Release` role, so both the Request-List rules and
/// the path-expression order apply.
#[derive(Debug, Clone)]
pub struct ReadersWriters {
    mon: Monitor<RwInner>,
    start_read: ProcName,
    end_read: ProcName,
    start_write: ProcName,
    end_write: ProcName,
    ok_read: CondId,
    ok_write: CondId,
}

impl ReadersWriters {
    /// The readers–writers declaration, shared with the offline
    /// linter's `--builtin` set. Duplicate names and role typos are
    /// compile errors; the path expression and class shape are vetted
    /// by the static analyzer at first use.
    pub fn spec(name: &str) -> MonitorSpec {
        rmon_core::monitor_spec! {
            name: name,
            class: ResourceAllocator,
            procedures: {
                start_read: Request,
                end_read: Release,
                start_write: Request,
                end_write: Release,
            },
            conditions: { ok_to_read: Plain, ok_to_write: Plain },
            call_order: "path ((start_read ; end_read) | (start_write ; end_write))* end",
        }
    }

    /// Creates the monitor in `rt`.
    pub fn new(rt: &Runtime, name: &str) -> Self {
        let spec = Self::spec(name);
        let start_read = spec.proc_by_name("start_read").expect("declared");
        let end_read = spec.proc_by_name("end_read").expect("declared");
        let start_write = spec.proc_by_name("start_write").expect("declared");
        let end_write = spec.proc_by_name("end_write").expect("declared");
        let ok_read = spec.cond_by_name("ok_to_read").expect("declared");
        let ok_write = spec.cond_by_name("ok_to_write").expect("declared");
        ReadersWriters {
            mon: Monitor::new(rt, spec, RwInner::default()),
            start_read,
            end_read,
            start_write,
            end_write,
            ok_read,
            ok_write,
        }
    }

    /// Begins a read section (shared access).
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] if starved past the park timeout.
    pub fn start_read(&self) -> Result<(), MonitorError> {
        let mut g = self.mon.enter(self.start_read)?;
        if g.with(|d| d.writing) {
            g.wait(self.ok_read)?;
        }
        g.with(|d| d.readers += 1);
        // Cascade: admit further queued readers one at a time.
        g.signal_exit(Some(self.ok_read));
        Ok(())
    }

    /// Ends a read section.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] if starved past the park timeout.
    pub fn end_read(&self) -> Result<(), MonitorError> {
        let g = self.mon.enter(self.end_read)?;
        let last = g.with(|d| {
            d.readers = d.readers.saturating_sub(1);
            d.readers == 0
        });
        if last {
            g.signal_exit(Some(self.ok_write));
        } else {
            g.signal_exit(None);
        }
        Ok(())
    }

    /// Begins a write section (exclusive access).
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] if starved past the park timeout.
    pub fn start_write(&self) -> Result<(), MonitorError> {
        let mut g = self.mon.enter(self.start_write)?;
        if g.with(|d| d.writing || d.readers > 0) {
            g.wait(self.ok_write)?;
        }
        g.with(|d| d.writing = true);
        g.signal_exit(None);
        Ok(())
    }

    /// Ends a write section, preferring queued writers, then readers.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] if starved past the park timeout.
    pub fn end_write(&self) -> Result<(), MonitorError> {
        let g = self.mon.enter(self.end_write)?;
        g.with(|d| d.writing = false);
        if g.has_waiters(self.ok_write) {
            g.signal_exit(Some(self.ok_write));
        } else {
            g.signal_exit(Some(self.ok_read));
        }
        Ok(())
    }

    /// Runs `f` inside a read section.
    ///
    /// # Errors
    ///
    /// Propagates section-entry timeouts.
    pub fn read<R>(&self, f: impl FnOnce() -> R) -> Result<R, MonitorError> {
        self.start_read()?;
        let r = f();
        self.end_read()?;
        Ok(r)
    }

    /// Runs `f` inside a write section.
    ///
    /// # Errors
    ///
    /// Propagates section-entry timeouts.
    pub fn write<R>(&self, f: impl FnOnce() -> R) -> Result<R, MonitorError> {
        self.start_write()?;
        let r = f();
        self.end_write()?;
        Ok(r)
    }

    /// Deliberately violates the declared order (calls `end_read`
    /// without `start_read`) — user-process fault helper for tests and
    /// the campaign.
    pub fn faulty_end_read(&self) -> Result<(), MonitorError> {
        self.end_read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::{DetectorConfig, RuleId};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn rt() -> Runtime {
        Runtime::builder(DetectorConfig::without_timeouts())
            .park_timeout(Duration::from_millis(500))
            .build()
    }

    #[test]
    fn readers_share_writers_exclude() {
        let rt = rt();
        let rw = ReadersWriters::new(&rt, "store");
        let value = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let rw = rw.clone();
            let value = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    rw.write(|| {
                        let v = value.load(Ordering::SeqCst);
                        value.store(v + 1, Ordering::SeqCst);
                    })
                    .unwrap();
                }
            }));
        }
        for _ in 0..4 {
            let rw = rw.clone();
            let value = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let _ = rw.read(|| value.load(Ordering::SeqCst)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(value.load(Ordering::SeqCst), 50);
        let report = rt.checkpoint_now();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn order_violation_is_reported_in_real_time() {
        let rt = rt();
        let rw = ReadersWriters::new(&rt, "store");
        rw.faulty_end_read().unwrap();
        let vs = rt.realtime_violations();
        assert!(
            vs.iter()
                .any(|v| v.rule == RuleId::St8ReleaseWithoutRequest
                    || v.rule == RuleId::St8CallOrder),
            "{vs:?}"
        );
    }

    #[test]
    fn mixed_read_write_from_one_thread_is_clean() {
        let rt = rt();
        let rw = ReadersWriters::new(&rt, "store");
        rw.read(|| ()).unwrap();
        rw.write(|| ()).unwrap();
        rw.read(|| ()).unwrap();
        assert!(rt.checkpoint_now().is_clean());
        assert!(rt.realtime_violations().is_empty());
    }
}
