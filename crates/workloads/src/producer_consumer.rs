//! Producer/consumer workloads over the communication-coordinator
//! monitor — the workload of the paper's performance evaluation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmon_core::{MonitorId, Nanos};
use rmon_sim::{Script, SimBuilder, SimConfig};

/// Shape of a producer/consumer simulation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcWorkload {
    /// Producer process count.
    pub producers: usize,
    /// Consumer process count.
    pub consumers: usize,
    /// Items each producer sends.
    pub items_per_producer: usize,
    /// Buffer capacity.
    pub capacity: u64,
    /// Local compute time between calls (adds scheduling variety).
    pub think: Nanos,
}

impl Default for PcWorkload {
    fn default() -> Self {
        PcWorkload {
            producers: 2,
            consumers: 2,
            items_per_producer: 20,
            capacity: 2,
            think: Nanos::from_micros(3),
        }
    }
}

impl PcWorkload {
    /// Total sends the workload performs (== total receives).
    pub fn total_items(&self) -> usize {
        self.producers * self.items_per_producer
    }

    /// Populates `builder` with the buffer and processes; returns the
    /// buffer's monitor id.
    ///
    /// Consumers are added first so that, under round-robin
    /// scheduling, the empty-buffer wait path is exercised right away.
    pub fn install(&self, builder: &mut SimBuilder) -> MonitorId {
        let buf = builder.bounded_buffer("buffer", self.capacity);
        let per_consumer = split(self.total_items(), self.consumers);
        for (c, &n) in per_consumer.iter().enumerate() {
            builder.process(
                format!("consumer{c}"),
                Script::builder().repeat(n, |s| s.receive(buf).compute(self.think)).build(),
            );
        }
        for p in 0..self.producers {
            builder.process(
                format!("producer{p}"),
                Script::builder()
                    .repeat(self.items_per_producer, |s| s.send(buf).compute(self.think))
                    .build(),
            );
        }
        buf
    }

    /// Builds a ready simulation for this workload.
    pub fn build_sim(&self, cfg: SimConfig) -> (rmon_sim::Sim, MonitorId) {
        let mut b = SimBuilder::new().with_config(cfg);
        let buf = self.install(&mut b);
        (b.build().expect("producer/consumer scripts are valid"), buf)
    }

    /// A randomized variant: per-process item counts and think times
    /// jittered by `seed` (used by property tests to explore shapes).
    pub fn randomized(seed: u64) -> PcWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        PcWorkload {
            producers: rng.gen_range(1..=4),
            consumers: rng.gen_range(1..=4),
            items_per_producer: rng.gen_range(1..=30),
            capacity: rng.gen_range(1..=8),
            think: Nanos::from_micros(rng.gen_range(0..=10)),
        }
    }
}

fn split(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let base = total / parts;
    let mut out = vec![base; parts];
    for item in out.iter_mut().take(total % parts) {
        *item += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::DetectorConfig;

    #[test]
    fn default_workload_runs_clean() {
        let (mut sim, _buf) = PcWorkload::default().build_sim(SimConfig::default());
        let out = rmon_sim::run_with_detection(&mut sim, DetectorConfig::default());
        assert!(out.finished, "workload must complete");
        assert!(out.is_clean(), "{}", out.combined);
    }

    #[test]
    fn randomized_workloads_are_in_bounds() {
        for seed in 0..50 {
            let w = PcWorkload::randomized(seed);
            assert!(w.producers >= 1 && w.producers <= 4);
            assert!(w.capacity >= 1 && w.capacity <= 8);
        }
    }

    #[test]
    fn total_items_counts_producers() {
        let w = PcWorkload { producers: 3, items_per_producer: 7, ..Default::default() };
        assert_eq!(w.total_items(), 21);
    }

    #[test]
    fn uneven_split_covers_all_items() {
        assert_eq!(split(10, 3).iter().sum::<usize>(), 10);
        assert_eq!(split(1, 4).iter().sum::<usize>(), 1);
    }

    #[test]
    fn many_seeds_run_clean_under_random_scheduling() {
        for seed in 0..10 {
            let w = PcWorkload::randomized(seed);
            let (mut sim, _) = w.build_sim(SimConfig::random_seeded(seed));
            let out = rmon_sim::run_with_detection(&mut sim, DetectorConfig::without_timeouts());
            assert!(out.is_clean(), "seed {seed}: {}", out.combined);
        }
    }
}
