//! # rmon-workloads — evaluation workloads and the fault-injection
//! campaign
//!
//! Workload generators for both substrates of the `rmon` workspace,
//! plus the canonical 21-class fault-injection campaign reproducing the
//! robustness evaluation of the DSN 2001 paper:
//!
//! * [`PcWorkload`] — producer/consumer over a bounded buffer (the
//!   workload of the paper's performance evaluation);
//! * [`Philosophers`] — dining philosophers over single-unit
//!   allocators (ordered = deadlock-free; naive = circular wait, whose
//!   deadlock the detector flags through its timers);
//! * [`ReadersWriters`] — a real-thread Hoare monitor with a declared
//!   path-expression call order;
//! * [`AllocatorMix`] — allocator clients including the three
//!   user-process fault patterns;
//! * [`faultset`] — the coverage campaign: one scenario per taxonomy
//!   class (EXP-COV);
//! * [`sweep`] — synthetic traces and parameter sweeps for the
//!   benchmark harness;
//! * [`soak`] — the soak/chaos driver over the durable oplog: monitor
//!   churn, backpressure storms, crash injection and the closing
//!   differential replay;
//! * [`distributed`] — the multi-process mirror of the fleet sweeps:
//!   N `rmon-net` workers streaming one [`sweep::FleetTrace`] into a
//!   single detection service, optionally through the fault-injecting
//!   harness;
//! * [`saturation`] — thousands of concurrent producer threads against
//!   one backend: the stress harness comparing synchronous and
//!   asynchronous instrumentation modes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocator_clients;
pub mod distributed;
pub mod faultset;
pub mod philosophers;
pub mod producer_consumer;
pub mod readers_writers;
pub mod saturation;
pub mod soak;
pub mod sweep;

pub use allocator_clients::{AllocatorMix, ClientKind};
pub use distributed::{drive_fleet_distributed, DistributedConfig, DistributedOutcome};
pub use philosophers::Philosophers;
pub use producer_consumer::PcWorkload;
pub use readers_writers::ReadersWriters;
pub use saturation::{run_saturation, SaturationConfig, SaturationReport};
pub use soak::{run_soak, SoakConfig, SoakReport};
