//! Event recording for the simulator — the paper's *data-gathering
//! routine* (§4), virtual-time edition.

use rmon_core::{Event, EventKind, MonitorId, Nanos, Pid, ProcName, VClock};

/// Records scheduling events with global sequence numbers.
///
/// Two buffers serve the two consumers: `fresh` feeds the real-time
/// checks ([`rmon_core::detect::Detector::observe`]) step by step,
/// `window` accumulates the checking window for the next periodic
/// checkpoint.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    next_seq: u64,
    window: Vec<Event>,
    fresh: Vec<Event>,
    total: u64,
    /// When set, every event is also kept in a full trace (for the
    /// reference checker / debugging).
    keep_full: bool,
    full: Vec<Event>,
}

impl TraceRecorder {
    /// A recorder that keeps only the working buffers.
    pub fn new() -> Self {
        TraceRecorder { next_seq: 1, ..Default::default() }
    }

    /// A recorder that additionally retains the complete trace (used by
    /// differential tests against the full-history reference checker).
    pub fn with_full_trace() -> Self {
        TraceRecorder { next_seq: 1, keep_full: true, ..Default::default() }
    }

    /// Records one event.
    pub fn record(
        &mut self,
        time: Nanos,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
    ) -> Event {
        let event =
            Event { seq: self.next_seq, time, monitor, pid, proc_name, kind, vc: VClock::UNSET };
        self.next_seq += 1;
        self.total += 1;
        self.window.push(event);
        self.fresh.push(event);
        if self.keep_full {
            self.full.push(event);
        }
        event
    }

    /// Drains events recorded since the last call (for real-time
    /// observation).
    pub fn take_fresh(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.fresh)
    }

    /// Drains the current checking window.
    pub fn drain_window(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.window)
    }

    /// Total events recorded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The full trace, if retention was enabled.
    pub fn full_trace(&self) -> &[Event] {
        &self.full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(r: &mut TraceRecorder, t: u64) -> Event {
        r.record(
            Nanos::new(t),
            MonitorId::new(0),
            Pid::new(1),
            ProcName::new(0),
            EventKind::Enter { granted: true },
        )
    }

    #[test]
    fn buffers_fill_and_drain_independently() {
        let mut r = TraceRecorder::new();
        rec(&mut r, 1);
        rec(&mut r, 2);
        assert_eq!(r.take_fresh().len(), 2);
        assert_eq!(r.take_fresh().len(), 0);
        rec(&mut r, 3);
        assert_eq!(r.drain_window().len(), 3);
        assert_eq!(r.take_fresh().len(), 1);
        assert_eq!(r.total(), 3);
    }

    #[test]
    fn sequence_numbers_are_global() {
        let mut r = TraceRecorder::new();
        let a = rec(&mut r, 1);
        let b = rec(&mut r, 2);
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
    }

    #[test]
    fn full_trace_retention_is_optional() {
        let mut r = TraceRecorder::new();
        rec(&mut r, 1);
        assert!(r.full_trace().is_empty());
        let mut r = TraceRecorder::with_full_trace();
        rec(&mut r, 1);
        r.drain_window();
        assert_eq!(r.full_trace().len(), 1);
    }
}
