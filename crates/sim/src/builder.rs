//! Builder assembling a validated simulation.

use crate::config::SimConfig;
use crate::inject::{FaultInjector, InjectionPlan};
use crate::kernel::Sim;
use crate::monitor::SimMonitor;
use crate::process::SimProcess;
use crate::script::{CallKind, Op, Script};
use rmon_core::{MonitorClass, MonitorId, Pid};
use std::fmt;

/// Script validation errors reported by [`SimBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A script op references a monitor id that was never added.
    UnknownMonitor {
        /// The offending process name.
        process: String,
        /// Index of the op in its script.
        op_index: usize,
        /// The referenced monitor.
        monitor: MonitorId,
    },
    /// A script op calls a procedure the monitor type does not have.
    IncompatibleCall {
        /// The offending process name.
        process: String,
        /// Index of the op in its script.
        op_index: usize,
        /// The referenced monitor.
        monitor: MonitorId,
        /// The incompatible call kind (debug form).
        call: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownMonitor { process, op_index, monitor } => {
                write!(f, "process {process:?} op {op_index} references unknown monitor {monitor}")
            }
            BuildError::IncompatibleCall { process, op_index, monitor, call } => write!(
                f,
                "process {process:?} op {op_index} calls {call} on incompatible monitor {monitor}"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Sim`] from monitors, processes and injection plans.
///
/// # Examples
///
/// ```
/// use rmon_sim::{Script, SimBuilder};
///
/// let mut b = SimBuilder::new();
/// let buf = b.bounded_buffer("mailbox", 4);
/// b.process("producer", Script::builder().repeat(10, |s| s.send(buf)).build());
/// b.process("consumer", Script::builder().repeat(10, |s| s.receive(buf)).build());
/// let sim = b.build()?;
/// assert_eq!(sim.processes().len(), 2);
/// # Ok::<(), rmon_sim::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct SimBuilder {
    cfg: SimConfig,
    monitors: Vec<SimMonitor>,
    procs: Vec<(String, Script)>,
    injector: FaultInjector,
    full_trace: bool,
}

impl SimBuilder {
    /// Starts an empty build with the default configuration.
    pub fn new() -> Self {
        SimBuilder {
            cfg: SimConfig::default(),
            monitors: Vec::new(),
            procs: Vec::new(),
            injector: FaultInjector::new(),
            full_trace: false,
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Enables full-trace retention (for the reference checker).
    pub fn with_full_trace(mut self) -> Self {
        self.full_trace = true;
        self
    }

    /// Adds a bounded-buffer (communication coordinator) monitor.
    pub fn bounded_buffer(&mut self, name: &str, capacity: u64) -> MonitorId {
        let id = MonitorId::new(self.monitors.len() as u32);
        self.monitors.push(SimMonitor::bounded_buffer(id, name, capacity));
        id
    }

    /// Adds a resource-allocator monitor.
    pub fn allocator(&mut self, name: &str, units: u64) -> MonitorId {
        let id = MonitorId::new(self.monitors.len() as u32);
        self.monitors.push(SimMonitor::allocator(id, name, units));
        id
    }

    /// Adds an operation-manager monitor.
    pub fn manager(&mut self, name: &str) -> MonitorId {
        let id = MonitorId::new(self.monitors.len() as u32);
        self.monitors.push(SimMonitor::manager(id, name));
        id
    }

    /// Adds a process running `script`; pids are assigned in insertion
    /// order.
    pub fn process(&mut self, name: impl Into<String>, script: Script) -> Pid {
        let pid = Pid::new(self.procs.len() as u32);
        self.procs.push((name.into(), script));
        pid
    }

    /// Registers a fault-injection plan.
    pub fn inject(&mut self, plan: InjectionPlan) -> &mut Self {
        self.injector.add(plan);
        self
    }

    /// Validates all scripts and assembles the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if a script references an unknown monitor
    /// or calls a procedure the monitor type does not provide.
    pub fn build(self) -> Result<Sim, BuildError> {
        for (name, script) in &self.procs {
            for (idx, op) in script.ops().iter().enumerate() {
                if let Op::Call { monitor, call } = op {
                    let Some(m) = self.monitors.get(monitor.as_usize()) else {
                        return Err(BuildError::UnknownMonitor {
                            process: name.clone(),
                            op_index: idx,
                            monitor: *monitor,
                        });
                    };
                    if !call_compatible(m.spec.class, *call) {
                        return Err(BuildError::IncompatibleCall {
                            process: name.clone(),
                            op_index: idx,
                            monitor: *monitor,
                            call: format!("{call:?}"),
                        });
                    }
                }
            }
        }
        let procs = self
            .procs
            .into_iter()
            .enumerate()
            .map(|(i, (name, script))| SimProcess::new(Pid::new(i as u32), name, script))
            .collect();
        Ok(Sim::assemble(self.cfg, procs, self.monitors, self.injector, self.full_trace))
    }
}

/// Whether a call kind is a procedure of the given monitor class.
pub fn call_compatible(class: MonitorClass, call: CallKind) -> bool {
    matches!(
        (class, call),
        (MonitorClass::CommunicationCoordinator, CallKind::Send)
            | (MonitorClass::CommunicationCoordinator, CallKind::Receive)
            | (MonitorClass::ResourceAllocator, CallKind::Request)
            | (MonitorClass::ResourceAllocator, CallKind::Release)
            | (MonitorClass::OperationManager, CallKind::Operate(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::Nanos;

    #[test]
    fn build_validates_monitor_references() {
        let mut b = SimBuilder::new();
        let _buf = b.bounded_buffer("buf", 1);
        b.process("p", Script::builder().send(MonitorId::new(5)).build());
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildError::UnknownMonitor { .. }));
        assert!(err.to_string().contains("M5"));
    }

    #[test]
    fn build_validates_call_compatibility() {
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 1);
        b.process("p", Script::builder().request(buf).build());
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildError::IncompatibleCall { .. }));
    }

    #[test]
    fn pids_and_monitor_ids_are_sequential() {
        let mut b = SimBuilder::new();
        let m0 = b.bounded_buffer("a", 1);
        let m1 = b.allocator("b", 1);
        let m2 = b.manager("c");
        assert_eq!((m0, m1, m2), (MonitorId::new(0), MonitorId::new(1), MonitorId::new(2)));
        let p0 = b.process("x", Script::default());
        let p1 = b.process("y", Script::default());
        assert_eq!((p0, p1), (Pid::new(0), Pid::new(1)));
    }

    #[test]
    fn compatibility_matrix() {
        use CallKind::*;
        use MonitorClass::*;
        assert!(call_compatible(CommunicationCoordinator, Send));
        assert!(call_compatible(CommunicationCoordinator, Receive));
        assert!(!call_compatible(CommunicationCoordinator, Request));
        assert!(call_compatible(ResourceAllocator, Request));
        assert!(call_compatible(ResourceAllocator, Release));
        assert!(!call_compatible(ResourceAllocator, Operate(Nanos::new(1))));
        assert!(call_compatible(OperationManager, Operate(Nanos::new(1))));
        assert!(!call_compatible(OperationManager, Send));
    }

    #[test]
    fn empty_script_process_is_immediately_done() {
        let mut b = SimBuilder::new();
        b.process("noop", Script::default());
        let mut sim = b.build().unwrap();
        // One step marks it Done (empty script).
        let _ = sim.step();
        assert!(sim.all_terminal());
    }
}
