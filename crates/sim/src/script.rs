//! Process scripts: the programs simulated processes run.
//!
//! A script is a flat sequence of [`Op`]s. Monitor interactions go
//! through [`CallKind`], which the kernel expands into the monitor
//! procedure's phases (enter → guard → wait? → action → signal-exit).
//!
//! User-process-level faults (§2.2 III) are *scripts*, not kernel
//! perturbations: a process that releases without requesting, never
//! releases, or requests twice is simply running a faulty program —
//! helpers for the three patterns are provided.

use rmon_core::{MonitorId, Nanos};

/// What a monitor call does; the kernel maps each kind to the monitor's
/// procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Deposit one item into a communication coordinator.
    Send,
    /// Remove one item from a communication coordinator.
    Receive,
    /// Acquire one access right from a resource allocator.
    Request,
    /// Return an access right to a resource allocator.
    Release,
    /// Perform one implicit-synchronization operation of the given
    /// virtual duration on an operation manager.
    Operate(Nanos),
}

/// One step of a process program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Local (outside-monitor) work for the given virtual duration.
    Compute(Nanos),
    /// A call to a monitor procedure.
    Call {
        /// The target monitor.
        monitor: MonitorId,
        /// Which procedure (by kind).
        call: CallKind,
    },
}

/// A finished process program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Script {
    ops: Vec<Op>,
}

impl Script {
    /// Starts building a script.
    pub fn builder() -> ScriptBuilder {
        ScriptBuilder { ops: Vec::new() }
    }

    /// The flat operation sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Canonical faulty script: release a right that was never
    /// requested (fault U1).
    pub fn release_without_request(alloc: MonitorId) -> Script {
        Script::builder().release(alloc).build()
    }

    /// Canonical faulty script: request and never release (fault U2).
    pub fn never_release(alloc: MonitorId, busy: Nanos) -> Script {
        Script::builder().request(alloc).compute(busy).build()
    }

    /// Canonical faulty script: request twice without releasing
    /// (fault U3, self-deadlock on a single-unit allocator).
    pub fn double_request(alloc: MonitorId) -> Script {
        Script::builder().request(alloc).request(alloc).release(alloc).build()
    }
}

impl FromIterator<Op> for Script {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Script { ops: iter.into_iter().collect() }
    }
}

/// Builder for [`Script`] (loops are expanded at build time, keeping
/// the kernel's instruction pointer a plain index).
#[derive(Debug, Clone)]
pub struct ScriptBuilder {
    ops: Vec<Op>,
}

impl ScriptBuilder {
    /// Appends local work.
    pub fn compute(mut self, d: Nanos) -> Self {
        self.ops.push(Op::Compute(d));
        self
    }

    /// Appends a `send` call.
    pub fn send(mut self, monitor: MonitorId) -> Self {
        self.ops.push(Op::Call { monitor, call: CallKind::Send });
        self
    }

    /// Appends a `receive` call.
    pub fn receive(mut self, monitor: MonitorId) -> Self {
        self.ops.push(Op::Call { monitor, call: CallKind::Receive });
        self
    }

    /// Appends a `request` call.
    pub fn request(mut self, monitor: MonitorId) -> Self {
        self.ops.push(Op::Call { monitor, call: CallKind::Request });
        self
    }

    /// Appends a `release` call.
    pub fn release(mut self, monitor: MonitorId) -> Self {
        self.ops.push(Op::Call { monitor, call: CallKind::Release });
        self
    }

    /// Appends an `operate` call of the given in-monitor duration.
    pub fn operate(mut self, monitor: MonitorId, d: Nanos) -> Self {
        self.ops.push(Op::Call { monitor, call: CallKind::Operate(d) });
        self
    }

    /// Appends an arbitrary operation.
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Repeats a sub-script `times` times.
    pub fn repeat(mut self, times: usize, f: impl FnOnce(ScriptBuilder) -> ScriptBuilder) -> Self {
        let body = f(ScriptBuilder { ops: Vec::new() }).ops;
        for _ in 0..times {
            self.ops.extend(body.iter().copied());
        }
        self
    }

    /// Finishes the script.
    pub fn build(self) -> Script {
        Script { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: MonitorId = MonitorId::new(0);

    #[test]
    fn builder_appends_in_order() {
        let s = Script::builder()
            .compute(Nanos::new(5))
            .send(M)
            .receive(M)
            .request(M)
            .release(M)
            .operate(M, Nanos::new(7))
            .build();
        assert_eq!(s.len(), 6);
        assert_eq!(s.ops()[0], Op::Compute(Nanos::new(5)));
        assert_eq!(s.ops()[1], Op::Call { monitor: M, call: CallKind::Send });
        assert_eq!(s.ops()[5], Op::Call { monitor: M, call: CallKind::Operate(Nanos::new(7)) });
    }

    #[test]
    fn repeat_expands() {
        let s = Script::builder().repeat(3, |b| b.send(M).receive(M)).build();
        assert_eq!(s.len(), 6);
        assert_eq!(s.ops()[0], s.ops()[2]);
    }

    #[test]
    fn nested_repeat() {
        let s = Script::builder()
            .repeat(2, |b| b.compute(Nanos::new(1)).repeat(2, |b| b.send(M)))
            .build();
        // (compute, send, send) × 2
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn faulty_script_helpers() {
        assert_eq!(Script::release_without_request(M).len(), 1);
        assert_eq!(Script::never_release(M, Nanos::new(10)).len(), 2);
        assert_eq!(Script::double_request(M).len(), 3);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Script = [Op::Compute(Nanos::new(1))].into_iter().collect();
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
