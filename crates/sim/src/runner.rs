//! Runs a simulation with the detector attached — the virtual-time
//! equivalent of the paper's prototype wiring (Figure 1): the kernel
//! records events as it schedules (*data gathering*), the detector's
//! real-time order checks run on every fresh event, and the periodic
//! checking routine fires every `check_interval` of virtual time.

use crate::kernel::{Sim, StepOutcome};
use rmon_core::detect::{CheckpointScope, DetectionBackend, SnapshotProvider, SnapshotTable};
use rmon_core::{DetectorConfig, FaultReport, MonitorId, Nanos, Violation};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything a detection-enabled run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// One report per periodic checkpoint, in order.
    pub reports: Vec<FaultReport>,
    /// Violations raised by the real-time (Algorithm-3) checks.
    pub realtime_violations: Vec<Violation>,
    /// All violations merged into one report.
    pub combined: FaultReport,
    /// Total events the simulator recorded.
    pub events_recorded: u64,
    /// Whether every process reached a terminal phase.
    pub finished: bool,
    /// Final virtual time.
    pub end_time: Nanos,
    /// Virtual time of the first injected perturbation, if any fired.
    pub first_injection_at: Option<Nanos>,
    /// Virtual time of the first reported violation, if any.
    pub first_detection_at: Option<Nanos>,
}

impl RunOutcome {
    /// Whether the run produced no violations at all.
    pub fn is_clean(&self) -> bool {
        self.combined.is_clean() && self.realtime_violations.is_empty()
    }

    /// Detection latency: virtual time from the first injected
    /// perturbation to the first reported violation.
    pub fn detection_latency(&self) -> Option<Nanos> {
        match (self.first_injection_at, self.first_detection_at) {
            (Some(i), Some(d)) => Some(d.saturating_since(i)),
            _ => None,
        }
    }
}

/// Drives `sim` to completion (or to its time/step bounds) with a
/// [`rmon_core::detect::Detector`] attached, checkpointing every
/// [`DetectorConfig::check_interval`] of virtual time.
///
/// This is [`run_with_backend`] over an
/// [`InlineBackend`](rmon_core::detect::InlineBackend) — one driver
/// loop serves every backend; the inline backend's synchronous checks
/// reproduce the paper's prototype wiring exactly.
pub fn run_with_detection(sim: &mut Sim, det_cfg: DetectorConfig) -> RunOutcome {
    let backend = rmon_core::detect::InlineBackend::new(det_cfg);
    run_with_backend(sim, &backend, det_cfg.check_interval)
}

/// Drives `sim` to completion (or to its time/step bounds) against any
/// [`DetectionBackend`] — the virtual-time twin of how `rmon-rt` wires
/// a runtime to the trait: fresh events flow through one
/// [`rmon_core::detect::ProducerHandle`] (the simulator is one
/// ingesting "thread"), and the periodic checking routine fires every
/// `check_interval` of virtual time via
/// [`DetectionBackend::checkpoint_window`].
///
/// Simulated and real-thread traffic thereby exercise the identical
/// ingestion API; an inline backend reproduces
/// [`run_with_detection`]'s verdicts exactly.
///
/// Real-time violations surface through the backend collector, so
/// `first_detection_at` is attributed at the drain that first sees
/// them (the handle is flushed and the collector drained at every
/// checkpoint boundary and at the end of the run).
pub fn run_with_backend(
    sim: &mut Sim,
    backend: &dyn DetectionBackend,
    check_interval: Nanos,
) -> RunOutcome {
    run_backend_loop(sim, backend, check_interval, None)
}

/// [`run_with_backend`] plus a **scoped checkpoint cadence**: every
/// `sweep_interval` of virtual time the driver publishes the
/// simulator's current monitor states into a
/// [`SnapshotTable`] registered on the backend and invokes the scoped
/// [`DetectionBackend::checkpoint`] — the backend replays what it
/// ingested in real time and runs the full Algorithm-1/2/timer
/// comparison with **no window drained** and no global barrier, exactly
/// the way an embedding runtime's per-shard sweeps do. The periodic
/// window checkpoints (every `check_interval`) still run and remain
/// the consistency barrier; per-pid watermarks deduplicate the overlap,
/// so verdicts never double-report.
///
/// What the sweeps buy in the simulator is the same thing they buy at
/// run time: detection latency. A fault visible in the observed state
/// (a lost process, an inconsistent queue) is flagged at the next sweep
/// instead of the next full checkpoint.
pub fn run_with_backend_checkpointed(
    sim: &mut Sim,
    backend: &dyn DetectionBackend,
    check_interval: Nanos,
    sweep_interval: Nanos,
) -> RunOutcome {
    run_backend_loop(sim, backend, check_interval, Some(sweep_interval.max(Nanos::new(1))))
}

fn run_backend_loop(
    sim: &mut Sim,
    backend: &dyn DetectionBackend,
    check_interval: Nanos,
    sweep_interval: Option<Nanos>,
) -> RunOutcome {
    for m in sim.monitors() {
        backend.register_empty(m.id, m.spec.clone(), sim.clock());
    }
    // The scoped-sweep plumbing: the driver is the backend's snapshot
    // provider, publishing the simulator's states (with per-monitor
    // ingested-event counts as consistency gates) before each sweep.
    let table = Arc::new(SnapshotTable::default());
    if sweep_interval.is_some() {
        backend.set_snapshot_provider(Arc::clone(&table) as Arc<dyn SnapshotProvider>);
    }
    let mut ingested: HashMap<MonitorId, u64> = HashMap::new();
    let mut producer = backend.producer();
    let interval = check_interval.max(Nanos::new(1));
    let mut next_check = sim.clock() + interval;
    let mut next_sweep = sweep_interval.map(|iv| sim.clock() + iv);
    let mut reports = Vec::new();
    let mut realtime: Vec<Violation> = Vec::new();
    let mut first_detection_at: Option<Nanos> = None;
    let max_time = sim.config().max_time;
    let max_steps = sim.config().max_steps;
    let mut steps: u64 = 0;

    let note_first = |violations: &[Violation], first: &mut Option<Nanos>| {
        if first.is_none() {
            if let Some(v) = violations.first() {
                *first = Some(v.detected_at);
            }
        }
    };

    loop {
        let outcome = sim.step();
        steps += 1;
        let horizon = next_sweep.map_or(next_check, |s| s.min(next_check));
        match outcome {
            StepOutcome::Progressed => {}
            StepOutcome::Idle { next_wake: Some(t) } => {
                sim.advance_to(t.min(horizon));
            }
            StepOutcome::Idle { next_wake: None } => {
                sim.advance_to(horizon);
            }
            StepOutcome::Finished => break,
        }
        for e in sim.take_fresh_events() {
            *ingested.entry(e.monitor).or_insert(0) += 1;
            producer.observe(e);
        }
        if next_sweep.is_some_and(|s| sim.clock() >= s) {
            producer.flush();
            table.publish_all(sim.snapshots());
            for (&monitor, &count) in &ingested {
                table.expect_events(monitor, count);
            }
            let report = backend.checkpoint(CheckpointScope::All, sim.clock());
            let drained = backend.drain_violations();
            note_first(&drained, &mut first_detection_at);
            realtime.extend(drained);
            if first_detection_at.is_none() && !report.violations.is_empty() {
                first_detection_at = Some(report.window_end);
            }
            reports.push(report);
            next_sweep = sweep_interval.map(|iv| sim.clock() + iv);
        }
        if sim.clock() >= next_check {
            producer.flush();
            let drained = backend.drain_violations();
            note_first(&drained, &mut first_detection_at);
            realtime.extend(drained);
            let events = sim.drain_window();
            let snaps = sim.snapshots();
            let report = backend.checkpoint_window(sim.clock(), &events, &snaps);
            if first_detection_at.is_none() && !report.violations.is_empty() {
                first_detection_at = Some(report.window_end);
            }
            reports.push(report);
            next_check = sim.clock() + interval;
        }
        if sim.clock() >= max_time || steps >= max_steps {
            break;
        }
    }

    // Final checkpoint over whatever remains in the window.
    for e in sim.take_fresh_events() {
        *ingested.entry(e.monitor).or_insert(0) += 1;
        producer.observe(e);
    }
    producer.flush();
    let drained = backend.drain_violations();
    note_first(&drained, &mut first_detection_at);
    realtime.extend(drained);
    let events = sim.drain_window();
    let snaps = sim.snapshots();
    let report = backend.checkpoint_window(sim.clock(), &events, &snaps);
    if first_detection_at.is_none() && !report.violations.is_empty() {
        first_detection_at = Some(report.window_end);
    }
    reports.push(report);
    let drained = backend.drain_violations();
    note_first(&drained, &mut first_detection_at);
    realtime.extend(drained);

    let mut combined = FaultReport { window_start: Nanos::MAX, ..FaultReport::default() };
    for r in &reports {
        combined.merge(r.clone());
    }
    combined.violations.extend(realtime.iter().cloned());

    RunOutcome {
        combined,
        realtime_violations: realtime,
        events_recorded: sim.events_recorded(),
        finished: sim.all_terminal(),
        end_time: sim.clock(),
        first_injection_at: sim.injector().first_fired_at(),
        first_detection_at,
        reports,
    }
}

/// Drives `sim` to completion without any detector (baseline for
/// overhead comparisons and plain functional tests).
pub fn run_plain(sim: &mut Sim) -> bool {
    let max_time = sim.config().max_time;
    let max_steps = sim.config().max_steps;
    let mut steps = 0u64;
    loop {
        match sim.step() {
            StepOutcome::Progressed => {}
            StepOutcome::Idle { next_wake: Some(t) } => sim.advance_to(t),
            StepOutcome::Idle { next_wake: None } => return false,
            StepOutcome::Finished => return true,
        }
        steps += 1;
        if sim.clock() >= max_time || steps >= max_steps {
            return sim.all_terminal();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimBuilder;
    use crate::inject::InjectionPlan;
    use crate::script::Script;
    use rmon_core::{FaultKind, RuleId};

    fn det_cfg() -> DetectorConfig {
        DetectorConfig::builder()
            .t_max(Nanos::from_millis(5))
            .t_io(Nanos::from_millis(10))
            .t_limit(Nanos::from_millis(20))
            .check_interval(Nanos::from_millis(1))
            .build()
    }

    #[test]
    fn clean_run_is_clean() {
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 2);
        for p in 0..2 {
            b.process(format!("prod{p}"), Script::builder().repeat(10, |s| s.send(buf)).build());
            b.process(format!("cons{p}"), Script::builder().repeat(10, |s| s.receive(buf)).build());
        }
        let mut sim = b.build().unwrap();
        let out = run_with_detection(&mut sim, det_cfg());
        assert!(out.finished);
        assert!(out.is_clean(), "{}", out.combined);
        assert!(out.events_recorded > 0);
    }

    #[test]
    fn injected_mutex_violation_is_detected() {
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 1);
        b.inject(InjectionPlan::once(FaultKind::EnterMutualExclusion, buf));
        b.process("p1", Script::builder().repeat(4, |s| s.send(buf)).build());
        b.process("p2", Script::builder().repeat(4, |s| s.receive(buf)).build());
        let mut sim = b.build().unwrap();
        let out = run_with_detection(&mut sim, det_cfg());
        assert!(sim_fired(&sim_placeholder(), &out), "injection must have fired");
        assert!(
            out.combined.violates_any(&[RuleId::St3RunningUnique, RuleId::St3RunningAtMostOne]),
            "{}",
            out.combined
        );
    }

    // Helpers: the injector state lives in `sim`, but `sim` is consumed
    // mutably by the runner; use the outcome's record instead.
    struct SimPlaceholder;
    fn sim_placeholder() -> SimPlaceholder {
        SimPlaceholder
    }
    fn sim_fired(_s: &SimPlaceholder, out: &RunOutcome) -> bool {
        out.first_injection_at.is_some()
    }

    #[test]
    fn double_request_detected_in_real_time() {
        let mut b = SimBuilder::new();
        let al = b.allocator("res", 1);
        b.process("dead", Script::double_request(al));
        let mut sim = b.build().unwrap();
        let out = run_with_detection(&mut sim, det_cfg());
        assert!(
            out.realtime_violations.iter().any(|v| v.rule == RuleId::St8DuplicateRequest),
            "{:?}",
            out.realtime_violations
        );
        assert!(!out.finished, "self-deadlock leaves the process blocked");
    }

    #[test]
    fn latency_is_measured_for_injected_faults() {
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 1);
        b.inject(InjectionPlan::once(FaultKind::SendDelayViolation, buf));
        b.process("p", Script::builder().repeat(3, |s| s.send(buf)).build());
        b.process("c", Script::builder().repeat(3, |s| s.receive(buf)).build());
        let mut sim = b.build().unwrap();
        let out = run_with_detection(&mut sim, det_cfg());
        assert!(out.first_injection_at.is_some());
        assert!(out.first_detection_at.is_some(), "{}", out.combined);
        assert!(out.detection_latency().is_some());
    }

    #[test]
    fn backend_runner_matches_inline_runner_on_faulty_traffic() {
        use rmon_core::detect::{InlineBackend, ServiceConfig, ShardedBackend};

        let build = || {
            let mut b = SimBuilder::new();
            let al = b.allocator("res", 1);
            b.process("dead", Script::double_request(al));
            b.build().unwrap()
        };
        let mut sim = build();
        let want = run_with_detection(&mut sim, det_cfg());

        let key = |v: &rmon_core::Violation| (v.monitor, v.pid, v.event_seq, v.rule);
        let mut want_rt = want.realtime_violations.clone();
        want_rt.sort_by_key(key);

        let inline = InlineBackend::new(det_cfg());
        let mut sim = build();
        let out = run_with_backend(&mut sim, &inline, det_cfg().check_interval);
        let mut got_rt = out.realtime_violations.clone();
        got_rt.sort_by_key(key);
        assert_eq!(got_rt, want_rt, "inline backend must reproduce the detector runner");
        assert_eq!(out.finished, want.finished);

        let sharded = ShardedBackend::new(det_cfg(), ServiceConfig::new(2)).with_batch(4);
        let mut sim = build();
        let out = run_with_backend(&mut sim, &sharded, det_cfg().check_interval);
        let mut got_rt = out.realtime_violations.clone();
        got_rt.sort_by_key(key);
        assert_eq!(got_rt, want_rt, "sharded backend must reproduce the detector runner");
        assert!(out.first_detection_at.is_some());
    }

    #[test]
    fn backend_runner_clean_run_is_clean() {
        use rmon_core::detect::{ServiceConfig, ShardedBackend};
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 2);
        b.process("p", Script::builder().repeat(10, |s| s.send(buf)).build());
        b.process("c", Script::builder().repeat(10, |s| s.receive(buf)).build());
        let mut sim = b.build().unwrap();
        let backend = ShardedBackend::new(det_cfg(), ServiceConfig::new(4));
        let out = run_with_backend(&mut sim, &backend, det_cfg().check_interval);
        assert!(out.finished);
        assert!(out.is_clean(), "{}", out.combined);
    }

    #[test]
    fn checkpointed_runner_clean_run_stays_clean() {
        use rmon_core::detect::{ServiceConfig, ShardedBackend};
        // Scoped sweeps 5× as frequent as the full checkpoints: the
        // published snapshots must never fabricate a mismatch on a
        // clean run, and the window checkpoints must still dedup
        // against what the sweeps already replayed.
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 2);
        b.process("p", Script::builder().repeat(50, |s| s.send(buf)).build());
        b.process("c", Script::builder().repeat(50, |s| s.receive(buf)).build());
        let mut sim = b.build().unwrap();
        let backend = ShardedBackend::new(det_cfg(), ServiceConfig::new(2));
        let out = run_with_backend_checkpointed(
            &mut sim,
            &backend,
            det_cfg().check_interval,
            Nanos::from_micros(5),
        );
        assert!(out.finished);
        assert!(out.is_clean(), "{}", out.combined);
        assert!(
            out.reports.len() > 2,
            "sweeps must add checkpoints between the windows: {}",
            out.reports.len()
        );
    }

    #[test]
    fn checkpointed_runner_detects_faults_like_the_window_runner() {
        use rmon_core::detect::{ServiceConfig, ShardedBackend};
        let build = || {
            let mut b = SimBuilder::new();
            let buf = b.bounded_buffer("buf", 1);
            b.inject(InjectionPlan::once(FaultKind::EnterMutualExclusion, buf));
            b.process("p1", Script::builder().repeat(4, |s| s.send(buf)).build());
            b.process("p2", Script::builder().repeat(4, |s| s.receive(buf)).build());
            b.build().unwrap()
        };
        let mut sim = build();
        let want = run_with_detection(&mut sim, det_cfg());
        let want_rules: std::collections::BTreeSet<RuleId> =
            want.combined.violations.iter().map(|v| v.rule).collect();
        assert!(!want_rules.is_empty());

        let mut sim = build();
        let backend = ShardedBackend::new(det_cfg(), ServiceConfig::new(2));
        let out = run_with_backend_checkpointed(
            &mut sim,
            &backend,
            det_cfg().check_interval,
            Nanos::from_micros(250),
        );
        let got_rules: std::collections::BTreeSet<RuleId> =
            out.combined.violations.iter().map(|v| v.rule).collect();
        assert!(
            got_rules.is_superset(&want_rules),
            "sweeping runner must detect at least the window runner's rules: \
             {got_rules:?} vs {want_rules:?}"
        );
        assert!(out.first_detection_at.is_some());
    }

    #[test]
    fn plain_run_completes_without_detector() {
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 2);
        b.process("p", Script::builder().repeat(5, |s| s.send(buf)).build());
        b.process("c", Script::builder().repeat(5, |s| s.receive(buf)).build());
        let mut sim = b.build().unwrap();
        assert!(run_plain(&mut sim));
    }
}
