//! The simulated Hoare monitor: explicit entry/condition queues, direct
//! hand-off, and injectable misbehaviour.
//!
//! The monitor discipline here is enforced by *protocol state* (an
//! `owner` list plus queues), not by Rust's ownership system — which is
//! precisely what makes the paper's implementation-level faults
//! expressible: an injected perturbation simply breaks the protocol
//! (admits two owners, drops a waiter, keeps the lock…) while the
//! data-gathering layer keeps recording events faithfully.

use crate::inject::FaultInjector;
use crate::script::CallKind;
use rmon_core::{
    CondId, FaultKind, MonitorClass, MonitorId, MonitorSpec, MonitorState, Nanos, Pid, PidProc,
    ProcName,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// The local data of a simulated monitor, by monitor type.
///
/// Counters are signed so injected faults can drive them out of range
/// without wrapping; snapshots clamp to the observable `R#`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorData {
    /// A bounded buffer (communication coordinator).
    Buffer {
        /// Items currently in the buffer.
        count: i64,
        /// Capacity `Rmax`.
        capacity: i64,
    },
    /// A multi-unit resource allocator.
    Allocator {
        /// Units currently available.
        avail: i64,
        /// Total units.
        units: i64,
    },
    /// An operation manager (no resource counter).
    Manager,
}

impl MonitorData {
    /// The observable `R#` (free capacity / available units), clamped
    /// at zero.
    pub fn available(&self) -> Option<u64> {
        match *self {
            MonitorData::Buffer { count, capacity } => Some((capacity - count).max(0) as u64),
            MonitorData::Allocator { avail, .. } => Some(avail.max(0) as u64),
            MonitorData::Manager => None,
        }
    }
}

/// Result of an `Enter` primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnterOutcome {
    /// The caller was granted the monitor. `record` is false when an
    /// injected fault suppressed the event (fault E4).
    Granted {
        /// Whether the data-gathering layer records the event.
        record: bool,
    },
    /// The caller was queued on `EQ` (event `Enter(flag=0)`).
    Blocked,
    /// Injected fault E2: the event is recorded but the process is
    /// neither queued nor admitted.
    Lost,
}

/// Result of a `Wait` primitive.
#[derive(Debug, Clone)]
pub struct WaitOutcome {
    /// Whether the caller actually blocked (false under fault W1).
    pub blocked: bool,
    /// Whether the caller was dropped entirely (fault W2).
    pub lost: bool,
    /// Entry-queue processes admitted into the monitor by the release
    /// (normally at most one; fault W5 admits two, faults W3/W6 none).
    pub admitted: Vec<PidProc>,
}

/// Result of a `Signal-Exit` primitive.
#[derive(Debug, Clone)]
pub struct ExitOutcome {
    /// The recorded flag: whether the primitive *claims* a condition
    /// waiter was resumed.
    pub flag: bool,
    /// Condition waiters actually resumed (handed the monitor).
    pub resumed: Vec<PidProc>,
    /// Entry-queue processes admitted.
    pub admitted: Vec<PidProc>,
}

/// One simulated monitor instance.
#[derive(Debug, Clone)]
pub struct SimMonitor {
    /// Monitor identifier.
    pub id: MonitorId,
    /// The static declaration registered with the detector.
    pub spec: Arc<MonitorSpec>,
    /// The monitor-local data.
    pub data: MonitorData,
    owner: Vec<PidProc>,
    eq: VecDeque<PidProc>,
    cqs: Vec<VecDeque<PidProc>>,
    /// Injected stuck lock (faults W6/X2): while set, nobody is ever
    /// admitted from the entry queue.
    stuck_lock: bool,
}

impl SimMonitor {
    /// Creates a bounded-buffer monitor.
    pub fn bounded_buffer(id: MonitorId, name: &str, capacity: u64) -> Self {
        let bb = MonitorSpec::bounded_buffer(name, capacity);
        SimMonitor {
            id,
            spec: Arc::new(bb.spec),
            data: MonitorData::Buffer { count: 0, capacity: capacity as i64 },
            owner: Vec::new(),
            eq: VecDeque::new(),
            cqs: vec![VecDeque::new(); 2],
            stuck_lock: false,
        }
    }

    /// Creates a resource-allocator monitor.
    pub fn allocator(id: MonitorId, name: &str, units: u64) -> Self {
        let al = MonitorSpec::allocator(name, units);
        SimMonitor {
            id,
            spec: Arc::new(al.spec),
            data: MonitorData::Allocator { avail: units as i64, units: units as i64 },
            owner: Vec::new(),
            eq: VecDeque::new(),
            cqs: vec![VecDeque::new(); 1],
            stuck_lock: false,
        }
    }

    /// Creates an operation-manager monitor.
    pub fn manager(id: MonitorId, name: &str) -> Self {
        let mg = MonitorSpec::operation_manager(name);
        SimMonitor {
            id,
            spec: Arc::new(mg.spec),
            data: MonitorData::Manager,
            owner: Vec::new(),
            eq: VecDeque::new(),
            cqs: Vec::new(),
            stuck_lock: false,
        }
    }

    /// Maps a call kind to this monitor's procedure index.
    ///
    /// # Panics
    ///
    /// Panics if the call kind does not belong to this monitor type —
    /// the builder validates scripts, so reaching this is a programming
    /// error in the simulator itself.
    pub fn proc_for(&self, call: CallKind) -> ProcName {
        let ok = match (self.spec.class, call) {
            (MonitorClass::CommunicationCoordinator, CallKind::Send) => Some(0),
            (MonitorClass::CommunicationCoordinator, CallKind::Receive) => Some(1),
            (MonitorClass::ResourceAllocator, CallKind::Request) => Some(0),
            (MonitorClass::ResourceAllocator, CallKind::Release) => Some(1),
            (MonitorClass::OperationManager, CallKind::Operate(_)) => Some(0),
            _ => None,
        };
        match ok {
            Some(i) => ProcName::new(i),
            None => panic!(
                "call {call:?} is not a procedure of {} monitor {}",
                self.spec.class, self.id
            ),
        }
    }

    /// The condition a blocked call waits on, and the condition its
    /// exit signals: `(wait_cond, signal_cond)`.
    pub fn conds_for(&self, call: CallKind) -> (Option<CondId>, Option<CondId>) {
        match (self.spec.class, call) {
            // Senders wait on buffer_full (c0), signal buffer_empty (c1).
            (MonitorClass::CommunicationCoordinator, CallKind::Send) => {
                (Some(CondId::new(0)), Some(CondId::new(1)))
            }
            // Receivers wait on buffer_empty (c1), signal buffer_full (c0).
            (MonitorClass::CommunicationCoordinator, CallKind::Receive) => {
                (Some(CondId::new(1)), Some(CondId::new(0)))
            }
            // Requesters wait on unit_available (c0), signal nothing.
            (MonitorClass::ResourceAllocator, CallKind::Request) => (Some(CondId::new(0)), None),
            // Release waits on nothing, signals unit_available.
            (MonitorClass::ResourceAllocator, CallKind::Release) => (None, Some(CondId::new(0))),
            _ => (None, None),
        }
    }

    /// Processes currently inside the monitor.
    pub fn owners(&self) -> &[PidProc] {
        &self.owner
    }

    /// The entry queue.
    pub fn entry_queue(&self) -> &VecDeque<PidProc> {
        &self.eq
    }

    /// Whether the injected stuck lock is active.
    pub fn is_stuck(&self) -> bool {
        self.stuck_lock
    }

    /// The observed scheduling state `⟨EQ, CQ[], Running, R#⟩`.
    pub fn snapshot(&self) -> MonitorState {
        MonitorState {
            entry_queue: self.eq.iter().copied().collect(),
            cond_queues: self.cqs.iter().map(|q| q.iter().copied().collect()).collect(),
            running: self.owner.clone(),
            available: self.data.available(),
        }
    }

    /// Admits the first non-starved entry waiter, if the lock is not
    /// stuck. Returns the admitted process. Skipped (starved) waiters
    /// are logged as fired perturbations.
    fn admit_one(&mut self, inj: &mut FaultInjector, now: Nanos) -> Option<PidProc> {
        if self.stuck_lock {
            return None;
        }
        let idx = self
            .eq
            .iter()
            .position(|pp| !inj.persists(FaultKind::WaitEntryStarved, self.id, pp.pid))?;
        for skipped in 0..idx {
            let pid = self.eq[skipped].pid;
            let _ = inj.fire(FaultKind::WaitEntryStarved, self.id, pid, now);
        }
        let pp = self.eq.remove(idx).expect("index from position");
        self.owner.push(pp);
        Some(pp)
    }

    /// The `Enter` primitive.
    pub fn enter(
        &mut self,
        pid: Pid,
        proc_name: ProcName,
        inj: &mut FaultInjector,
        now: Nanos,
    ) -> EnterOutcome {
        let pp = PidProc::new(pid, proc_name);
        // Fault E4: run inside without an observable Enter.
        if inj.fire(FaultKind::EnterNotObserved, self.id, pid, now) {
            self.owner.push(pp);
            return EnterOutcome::Granted { record: false };
        }
        let busy = !self.owner.is_empty() || self.stuck_lock;
        if busy {
            // Fault E1: grant although another process is inside.
            if inj.fire(FaultKind::EnterMutualExclusion, self.id, pid, now) {
                self.owner.push(pp);
                return EnterOutcome::Granted { record: true };
            }
            // Fault E2: record the attempt but drop the process.
            if inj.fire(FaultKind::EnterProcessLost, self.id, pid, now) {
                return EnterOutcome::Lost;
            }
            self.eq.push_back(pp);
            EnterOutcome::Blocked
        } else {
            // Fault E3: block the caller although the monitor is free.
            if inj.fire(FaultKind::EnterNoResponse, self.id, pid, now) {
                self.eq.push_back(pp);
                return EnterOutcome::Blocked;
            }
            self.owner.push(pp);
            EnterOutcome::Granted { record: true }
        }
    }

    /// The `Wait` primitive: the caller blocks on `CQ[cond]` and
    /// releases the monitor.
    pub fn wait(
        &mut self,
        pid: Pid,
        proc_name: ProcName,
        cond: CondId,
        inj: &mut FaultInjector,
        now: Nanos,
    ) -> WaitOutcome {
        let pp = PidProc::new(pid, proc_name);
        // Fault W1: the caller is not actually blocked.
        if inj.fire(FaultKind::WaitNotBlocked, self.id, pid, now) {
            return WaitOutcome { blocked: false, lost: false, admitted: Vec::new() };
        }
        self.owner.retain(|o| o.pid != pid);
        // Fault W2: the caller vanishes.
        let lost = inj.fire(FaultKind::WaitProcessLost, self.id, pid, now);
        if !lost {
            let c = cond.as_usize();
            if c >= self.cqs.len() {
                self.cqs.resize_with(c + 1, VecDeque::new);
            }
            self.cqs[c].push_back(pp);
        }
        // Fault W6: the monitor is not released (stuck lock). Only an
        // *effective* site (somebody queued to starve) consumes a
        // one-shot plan.
        if !self.eq.is_empty() && inj.fire(FaultKind::WaitMonitorNotReleased, self.id, pid, now) {
            self.stuck_lock = true;
            return WaitOutcome { blocked: true, lost, admitted: Vec::new() };
        }
        // Fault W3: entry waiters are not resumed (this release only).
        if !self.eq.is_empty() && inj.fire(FaultKind::WaitEntryNotResumed, self.id, pid, now) {
            return WaitOutcome { blocked: true, lost, admitted: Vec::new() };
        }
        let mut admitted = Vec::new();
        if let Some(a) = self.admit_one(inj, now) {
            admitted.push(a);
        }
        // Fault W5: a second entry waiter is resumed as well.
        if !self.eq.is_empty() && inj.fire(FaultKind::WaitMutualExclusion, self.id, pid, now) {
            if let Some(a) = self.admit_one(inj, now) {
                admitted.push(a);
            }
        }
        WaitOutcome { blocked: true, lost, admitted }
    }

    /// The combined `Signal-Exit` primitive.
    pub fn signal_exit(
        &mut self,
        pid: Pid,
        _proc_name: ProcName,
        cond: Option<CondId>,
        inj: &mut FaultInjector,
        now: Nanos,
    ) -> ExitOutcome {
        self.owner.retain(|o| o.pid != pid);
        let waiter_present =
            cond.is_some_and(|c| self.cqs.get(c.as_usize()).is_some_and(|q| !q.is_empty()));
        // Fault X1: nobody is resumed although the primitive claims the
        // normal hand-off. Only effective when someone was due a
        // resumption.
        if (waiter_present || !self.eq.is_empty())
            && inj.fire(FaultKind::SignalExitNotResumed, self.id, pid, now)
        {
            return ExitOutcome { flag: waiter_present, resumed: Vec::new(), admitted: Vec::new() };
        }
        // Fault X2: the monitor stays locked after the exit.
        if inj.fire(FaultKind::SignalExitMonitorNotReleased, self.id, pid, now) {
            self.stuck_lock = true;
            return ExitOutcome { flag: false, resumed: Vec::new(), admitted: Vec::new() };
        }
        let mut resumed = Vec::new();
        let mut admitted = Vec::new();
        if waiter_present {
            let c = cond.expect("waiter_present implies cond").as_usize();
            let waiter = self.cqs[c].pop_front().expect("waiter_present implies non-empty");
            self.owner.push(waiter);
            resumed.push(waiter);
            // Fault X3: an entry waiter is admitted *in addition to*
            // the resumed condition waiter.
            if !self.eq.is_empty()
                && inj.fire(FaultKind::SignalExitMutualExclusion, self.id, pid, now)
            {
                if let Some(a) = self.admit_one(inj, now) {
                    admitted.push(a);
                }
            }
        } else {
            if let Some(a) = self.admit_one(inj, now) {
                admitted.push(a);
            }
            // Fault X3 without waiters: admit a second entry waiter.
            if !self.eq.is_empty()
                && inj.fire(FaultKind::SignalExitMutualExclusion, self.id, pid, now)
            {
                if let Some(a) = self.admit_one(inj, now) {
                    admitted.push(a);
                }
            }
        }
        ExitOutcome { flag: waiter_present, resumed, admitted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::InjectionPlan;

    const M: MonitorId = MonitorId::new(0);

    fn pidp(p: u32, pr: u16) -> PidProc {
        PidProc::new(Pid::new(p), ProcName::new(pr))
    }

    fn quiet() -> FaultInjector {
        FaultInjector::new()
    }

    #[test]
    fn enter_grants_when_free_blocks_when_busy() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        assert_eq!(
            m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO),
            EnterOutcome::Granted { record: true }
        );
        assert_eq!(
            m.enter(Pid::new(2), ProcName::new(1), &mut inj, Nanos::ZERO),
            EnterOutcome::Blocked
        );
        assert_eq!(m.owners(), &[pidp(1, 0)]);
        assert_eq!(m.entry_queue().len(), 1);
    }

    #[test]
    fn wait_releases_and_admits_entry_head() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(2), ProcName::new(1), &mut inj, Nanos::ZERO);
        let w = m.wait(Pid::new(1), ProcName::new(0), CondId::new(0), &mut inj, Nanos::ZERO);
        assert!(w.blocked);
        assert!(!w.lost);
        assert_eq!(w.admitted, vec![pidp(2, 1)]);
        assert_eq!(m.owners(), &[pidp(2, 1)]);
    }

    #[test]
    fn signal_exit_hands_off_to_cond_waiter_first() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        m.enter(Pid::new(1), ProcName::new(1), &mut inj, Nanos::ZERO);
        m.wait(Pid::new(1), ProcName::new(1), CondId::new(1), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(2), ProcName::new(0), &mut inj, Nanos::ZERO);
        let x = m.signal_exit(
            Pid::new(2),
            ProcName::new(0),
            Some(CondId::new(1)),
            &mut inj,
            Nanos::ZERO,
        );
        assert!(x.flag);
        assert_eq!(x.resumed, vec![pidp(1, 1)]);
        assert!(x.admitted.is_empty());
        assert_eq!(m.owners(), &[pidp(1, 1)]);
    }

    #[test]
    fn signal_exit_without_waiter_admits_entry() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(2), ProcName::new(1), &mut inj, Nanos::ZERO);
        let x = m.signal_exit(
            Pid::new(1),
            ProcName::new(0),
            Some(CondId::new(1)),
            &mut inj,
            Nanos::ZERO,
        );
        assert!(!x.flag);
        assert_eq!(x.admitted, vec![pidp(2, 1)]);
    }

    #[test]
    fn e1_admits_second_owner() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::EnterMutualExclusion, M));
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        let o = m.enter(Pid::new(2), ProcName::new(1), &mut inj, Nanos::ZERO);
        assert_eq!(o, EnterOutcome::Granted { record: true });
        assert_eq!(m.owners().len(), 2);
    }

    #[test]
    fn e2_drops_the_process() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::EnterProcessLost, M));
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        let o = m.enter(Pid::new(2), ProcName::new(1), &mut inj, Nanos::ZERO);
        assert_eq!(o, EnterOutcome::Lost);
        assert!(m.entry_queue().is_empty());
    }

    #[test]
    fn e3_blocks_although_free() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::EnterNoResponse, M));
        let o = m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        assert_eq!(o, EnterOutcome::Blocked);
        assert!(m.owners().is_empty());
        assert_eq!(m.entry_queue().len(), 1);
    }

    #[test]
    fn e4_grants_without_recording() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::EnterNotObserved, M));
        let o = m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        assert_eq!(o, EnterOutcome::Granted { record: false });
        assert_eq!(m.owners().len(), 1);
    }

    #[test]
    fn w1_caller_not_blocked() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::WaitNotBlocked, M));
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        let w = m.wait(Pid::new(1), ProcName::new(0), CondId::new(0), &mut inj, Nanos::ZERO);
        assert!(!w.blocked);
        assert_eq!(m.owners(), &[pidp(1, 0)]);
    }

    #[test]
    fn w2_loses_the_waiter() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::WaitProcessLost, M));
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        let w = m.wait(Pid::new(1), ProcName::new(0), CondId::new(0), &mut inj, Nanos::ZERO);
        assert!(w.lost);
        assert!(m.snapshot().cond_queues[0].is_empty());
    }

    #[test]
    fn w6_sticks_the_lock() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::WaitMonitorNotReleased, M));
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(2), ProcName::new(1), &mut inj, Nanos::ZERO);
        let w = m.wait(Pid::new(1), ProcName::new(0), CondId::new(0), &mut inj, Nanos::ZERO);
        assert!(w.admitted.is_empty());
        assert!(m.is_stuck());
        // Later exits admit nobody either.
        let x = m.signal_exit(Pid::new(9), ProcName::new(0), None, &mut inj, Nanos::ZERO);
        assert!(x.admitted.is_empty());
    }

    #[test]
    fn w4_starves_marked_pid_but_serves_others() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::on_pid(FaultKind::WaitEntryStarved, M, Pid::new(2)));
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(2), ProcName::new(1), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(3), ProcName::new(0), &mut inj, Nanos::ZERO);
        let x = m.signal_exit(
            Pid::new(1),
            ProcName::new(0),
            Some(CondId::new(1)),
            &mut inj,
            Nanos::ZERO,
        );
        // P2 (head) is skipped; P3 admitted.
        assert_eq!(x.admitted, vec![pidp(3, 0)]);
        assert_eq!(m.entry_queue().front(), Some(&pidp(2, 1)));
    }

    #[test]
    fn x1_resumes_nobody_but_claims_flag() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::SignalExitNotResumed, M));
        m.enter(Pid::new(1), ProcName::new(1), &mut inj, Nanos::ZERO);
        m.wait(Pid::new(1), ProcName::new(1), CondId::new(1), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(2), ProcName::new(0), &mut inj, Nanos::ZERO);
        let x = m.signal_exit(
            Pid::new(2),
            ProcName::new(0),
            Some(CondId::new(1)),
            &mut inj,
            Nanos::ZERO,
        );
        assert!(x.flag, "the primitive claims the hand-off");
        assert!(x.resumed.is_empty());
        assert_eq!(m.snapshot().cond_queues[1].len(), 1, "waiter still parked");
    }

    #[test]
    fn x3_admits_entry_alongside_cond_waiter() {
        let mut m = SimMonitor::bounded_buffer(M, "b", 2);
        let mut inj = quiet();
        inj.add(InjectionPlan::once(FaultKind::SignalExitMutualExclusion, M));
        m.enter(Pid::new(1), ProcName::new(1), &mut inj, Nanos::ZERO);
        m.wait(Pid::new(1), ProcName::new(1), CondId::new(1), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(2), ProcName::new(0), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(3), ProcName::new(0), &mut inj, Nanos::ZERO);
        let x = m.signal_exit(
            Pid::new(2),
            ProcName::new(0),
            Some(CondId::new(1)),
            &mut inj,
            Nanos::ZERO,
        );
        assert_eq!(x.resumed.len(), 1);
        assert_eq!(x.admitted.len(), 1);
        assert_eq!(m.owners().len(), 2);
    }

    #[test]
    fn snapshot_reflects_structures() {
        let mut m = SimMonitor::allocator(M, "a", 2);
        let mut inj = quiet();
        m.enter(Pid::new(1), ProcName::new(0), &mut inj, Nanos::ZERO);
        m.enter(Pid::new(2), ProcName::new(0), &mut inj, Nanos::ZERO);
        let s = m.snapshot();
        assert_eq!(s.running, vec![pidp(1, 0)]);
        assert_eq!(s.entry_queue, vec![pidp(2, 0)]);
        assert_eq!(s.available, Some(2));
    }

    #[test]
    fn proc_and_cond_mapping() {
        let b = SimMonitor::bounded_buffer(M, "b", 1);
        assert_eq!(b.proc_for(CallKind::Send), ProcName::new(0));
        assert_eq!(b.proc_for(CallKind::Receive), ProcName::new(1));
        assert_eq!(b.conds_for(CallKind::Send), (Some(CondId::new(0)), Some(CondId::new(1))));
        let a = SimMonitor::allocator(M, "a", 1);
        assert_eq!(a.proc_for(CallKind::Request), ProcName::new(0));
        assert_eq!(a.conds_for(CallKind::Release), (None, Some(CondId::new(0))));
        let g = SimMonitor::manager(M, "m");
        assert_eq!(g.proc_for(CallKind::Operate(Nanos::new(1))), ProcName::new(0));
    }

    #[test]
    #[should_panic(expected = "not a procedure")]
    fn wrong_call_kind_panics() {
        let b = SimMonitor::bounded_buffer(M, "b", 1);
        let _ = b.proc_for(CallKind::Request);
    }

    #[test]
    fn data_available_clamps() {
        assert_eq!(MonitorData::Buffer { count: 3, capacity: 2 }.available(), Some(0));
        assert_eq!(MonitorData::Buffer { count: -1, capacity: 2 }.available(), Some(3));
        assert_eq!(MonitorData::Allocator { avail: -2, units: 2 }.available(), Some(0));
        assert_eq!(MonitorData::Manager.available(), None);
    }
}
