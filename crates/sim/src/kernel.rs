//! The simulation kernel: a deterministic user-level scheduler driving
//! scripted processes through Hoare monitors.
//!
//! Every scheduling decision is one [`Sim::step`]: the kernel picks an
//! actionable process (per the configured policy) and advances it by
//! exactly one phase — starting an op, evaluating a guard, performing a
//! data action, or exiting a monitor. Virtual time advances by
//! [`crate::SimConfig::step_cost`] per step, plus explicit `Compute`
//! durations. For a fixed seed the run is bit-for-bit reproducible,
//! which is what makes the coverage experiment (EXP-COV) a table rather
//! than an anecdote.

use crate::config::{SchedPolicy, SimConfig};
use crate::inject::FaultInjector;
use crate::metrics::SimMetrics;
use crate::monitor::{EnterOutcome, MonitorData, SimMonitor};
use crate::process::{BodyStage, Phase, SimProcess};
use crate::script::{CallKind, Op};
use crate::trace::TraceRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmon_core::{Event, EventKind, FaultKind, MonitorId, MonitorState, Nanos, Pid, PidProc};
use std::collections::HashMap;

/// What one kernel step accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A process advanced by one phase.
    Progressed,
    /// No process is actionable right now. `next_wake` is the earliest
    /// time a computing process becomes actionable; `None` means every
    /// non-terminal process is blocked on a queue.
    Idle {
        /// Earliest wake-up time of a computing process.
        next_wake: Option<Nanos>,
    },
    /// Every process is terminal (done, lost, or dead inside).
    Finished,
}

/// The deterministic concurrency simulator.
#[derive(Debug)]
pub struct Sim {
    cfg: SimConfig,
    clock: Nanos,
    procs: Vec<SimProcess>,
    monitors: Vec<SimMonitor>,
    injector: FaultInjector,
    recorder: TraceRecorder,
    rng: StdRng,
    rr_cursor: usize,
    metrics: SimMetrics,
}

impl Sim {
    /// Assembles a simulator; use [`crate::SimBuilder`] instead of
    /// calling this directly.
    pub(crate) fn assemble(
        cfg: SimConfig,
        procs: Vec<SimProcess>,
        monitors: Vec<SimMonitor>,
        injector: FaultInjector,
        full_trace: bool,
    ) -> Self {
        let recorder =
            if full_trace { TraceRecorder::with_full_trace() } else { TraceRecorder::new() };
        Sim {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            clock: Nanos::ZERO,
            procs,
            monitors,
            injector,
            recorder,
            rr_cursor: 0,
            metrics: SimMetrics::default(),
        }
    }

    /// Current virtual time.
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The simulated processes.
    pub fn processes(&self) -> &[SimProcess] {
        &self.procs
    }

    /// The simulated monitors.
    pub fn monitors(&self) -> &[SimMonitor] {
        &self.monitors
    }

    /// The fault injector (to inspect what fired).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> SimMetrics {
        let mut m = self.metrics;
        m.end_time = self.clock;
        m
    }

    /// Events recorded since the last call (for real-time checks).
    pub fn take_fresh_events(&mut self) -> Vec<Event> {
        self.recorder.take_fresh()
    }

    /// Drains the current checking window.
    pub fn drain_window(&mut self) -> Vec<Event> {
        self.recorder.drain_window()
    }

    /// The complete trace, when retention was enabled at build time.
    pub fn full_trace(&self) -> &[Event] {
        self.recorder.full_trace()
    }

    /// Total events recorded.
    pub fn events_recorded(&self) -> u64 {
        self.recorder.total()
    }

    /// Observed state snapshot of one monitor.
    pub fn snapshot(&self, monitor: MonitorId) -> Option<MonitorState> {
        self.monitors.get(monitor.as_usize()).map(SimMonitor::snapshot)
    }

    /// Observed state snapshots of all monitors.
    pub fn snapshots(&self) -> HashMap<MonitorId, MonitorState> {
        self.monitors.iter().map(|m| (m.id, m.snapshot())).collect()
    }

    /// Whether every process is terminal.
    pub fn all_terminal(&self) -> bool {
        self.procs.iter().all(|p| p.phase.terminal())
    }

    /// Jumps the virtual clock forward (used when all processes are
    /// blocked and only detector timers can make progress).
    pub fn advance_to(&mut self, t: Nanos) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Executes one scheduling step.
    pub fn step(&mut self) -> StepOutcome {
        if self.all_terminal() {
            return StepOutcome::Finished;
        }
        let actionable: Vec<usize> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.phase.actionable(self.clock))
            .map(|(i, _)| i)
            .collect();
        if actionable.is_empty() {
            let next_wake = self.procs.iter().filter_map(|p| p.phase.wake_time()).min();
            return StepOutcome::Idle { next_wake };
        }
        let chosen = match self.cfg.policy {
            SchedPolicy::RoundRobin => {
                let pick = actionable
                    .iter()
                    .copied()
                    .find(|&i| i >= self.rr_cursor)
                    .unwrap_or(actionable[0]);
                self.rr_cursor = pick + 1;
                pick
            }
            SchedPolicy::Random => actionable[self.rng.gen_range(0..actionable.len())],
        };
        self.execute_one(chosen);
        self.clock += self.cfg.step_cost;
        self.metrics.steps += 1;
        StepOutcome::Progressed
    }

    /// Advances process `i` by one phase.
    fn execute_one(&mut self, i: usize) {
        let phase = self.procs[i].phase;
        match phase {
            Phase::Ready => self.start_op(i),
            Phase::Computing { .. } => self.procs[i].advance_ip(),
            Phase::InMonitor { monitor, call, stage } => match stage {
                BodyStage::Guard => self.run_guard(i, monitor, call),
                BodyStage::ComputeInside { .. } => {
                    self.procs[i].phase =
                        Phase::InMonitor { monitor, call, stage: BodyStage::Exit };
                }
                BodyStage::Exit => self.run_exit(i, monitor, call),
            },
            // Blocked/terminal processes are never scheduled.
            _ => unreachable!("non-actionable process scheduled: {phase:?}"),
        }
    }

    fn start_op(&mut self, i: usize) {
        let Some(op) = self.procs[i].current_op() else {
            self.procs[i].phase = Phase::Done;
            return;
        };
        match op {
            Op::Compute(d) => {
                self.procs[i].phase = Phase::Computing { until: self.clock + d };
            }
            Op::Call { monitor, call } => {
                let pid = self.procs[i].pid;
                let m = &mut self.monitors[monitor.as_usize()];
                let proc_name = m.proc_for(call);
                match m.enter(pid, proc_name, &mut self.injector, self.clock) {
                    EnterOutcome::Granted { record } => {
                        if record {
                            self.recorder.record(
                                self.clock,
                                monitor,
                                pid,
                                proc_name,
                                EventKind::Enter { granted: true },
                            );
                        }
                        self.procs[i].phase = Phase::InMonitor {
                            monitor,
                            call,
                            stage: initial_stage(call, self.clock),
                        };
                    }
                    EnterOutcome::Blocked => {
                        self.recorder.record(
                            self.clock,
                            monitor,
                            pid,
                            proc_name,
                            EventKind::Enter { granted: false },
                        );
                        self.metrics.entry_blocks += 1;
                        self.procs[i].phase = Phase::BlockedEntry { monitor, call };
                    }
                    EnterOutcome::Lost => {
                        self.recorder.record(
                            self.clock,
                            monitor,
                            pid,
                            proc_name,
                            EventKind::Enter { granted: false },
                        );
                        self.procs[i].phase = Phase::Lost;
                    }
                }
            }
        }
    }

    fn run_guard(&mut self, i: usize, monitor: MonitorId, call: CallKind) {
        let pid = self.procs[i].pid;
        let mid = monitor.as_usize();
        let must_wait_real = match (&self.monitors[mid].data, call) {
            (MonitorData::Buffer { count, capacity }, CallKind::Send) => count >= capacity,
            (MonitorData::Buffer { count, .. }, CallKind::Receive) => *count <= 0,
            (MonitorData::Allocator { avail, .. }, CallKind::Request) => *avail <= 0,
            _ => false,
        };
        // Procedure-level fault injections perturb the guard decision.
        let mut wait = must_wait_real;
        match call {
            CallKind::Send => {
                if !must_wait_real
                    && self.injector.fire(FaultKind::SendDelayViolation, monitor, pid, self.clock)
                {
                    wait = true; // P1: delayed although not full.
                }
                if must_wait_real
                    && self.injector.fire(FaultKind::SendExceedsCapacity, monitor, pid, self.clock)
                {
                    wait = false; // P4: not delayed although full.
                }
            }
            CallKind::Receive => {
                if !must_wait_real
                    && self.injector.fire(
                        FaultKind::ReceiveDelayViolation,
                        monitor,
                        pid,
                        self.clock,
                    )
                {
                    wait = true; // P2: delayed although not empty.
                }
                if must_wait_real
                    && self.injector.fire(FaultKind::ReceiveExceedsSend, monitor, pid, self.clock)
                {
                    wait = false; // P3: not delayed although empty.
                }
            }
            _ => {}
        }
        if wait {
            let m = &mut self.monitors[mid];
            let proc_name = m.proc_for(call);
            let (wait_cond, _) = m.conds_for(call);
            let cond = wait_cond.expect("only calls with a wait condition can wait");
            let out = m.wait(pid, proc_name, cond, &mut self.injector, self.clock);
            self.recorder.record(self.clock, monitor, pid, proc_name, EventKind::Wait { cond });
            self.metrics.cond_blocks += 1;
            if !out.blocked {
                // Fault W1: continues inside as if signalled.
                self.procs[i].phase = Phase::InMonitor { monitor, call, stage: BodyStage::Exit };
            } else {
                let admitted = out.admitted.clone();
                self.procs[i].phase = if out.lost {
                    Phase::Lost
                } else {
                    Phase::BlockedCond { monitor, call, resume: BodyStage::Exit }
                };
                for a in admitted {
                    self.wake_entry(a);
                }
            }
        } else {
            self.procs[i].phase = Phase::InMonitor { monitor, call, stage: BodyStage::Exit };
        }
    }

    fn run_exit(&mut self, i: usize, monitor: MonitorId, call: CallKind) {
        let pid = self.procs[i].pid;
        let mid = monitor.as_usize();
        let proc_name = self.monitors[mid].proc_for(call);
        // Fault T1: the process dies at the exit point, still owning the
        // monitor; the data effect never happens (the call did not
        // complete).
        if self.injector.fire(FaultKind::InternalTermination, monitor, pid, self.clock) {
            self.recorder.record(self.clock, monitor, pid, proc_name, EventKind::Terminate);
            self.procs[i].phase = Phase::DeadInside;
            return;
        }
        // The data effect is applied in the same step as the exit event:
        // a checkpoint therefore always sees R# consistent with the
        // recorded exits (successful calls), matching the paper's
        // success-at-completion accounting.
        {
            let m = &mut self.monitors[mid];
            match (&mut m.data, call) {
                (MonitorData::Buffer { count, .. }, CallKind::Send) => *count += 1,
                (MonitorData::Buffer { count, .. }, CallKind::Receive) => *count -= 1,
                (MonitorData::Allocator { avail, .. }, CallKind::Request) => *avail -= 1,
                (MonitorData::Allocator { avail, .. }, CallKind::Release) => *avail += 1,
                _ => {}
            }
        }
        let (_, signal_cond) = self.monitors[mid].conds_for(call);
        let out = self.monitors[mid].signal_exit(
            pid,
            proc_name,
            signal_cond,
            &mut self.injector,
            self.clock,
        );
        self.recorder.record(
            self.clock,
            monitor,
            pid,
            proc_name,
            EventKind::SignalExit { cond: signal_cond, resumed_waiter: out.flag },
        );
        let resumed = out.resumed.clone();
        let admitted = out.admitted.clone();
        for r in resumed {
            self.wake_cond(r);
        }
        for a in admitted {
            self.wake_entry(a);
        }
        self.metrics.calls_completed += 1;
        self.procs[i].calls_completed += 1;
        self.procs[i].advance_ip();
    }

    /// Wakes a process admitted from an entry queue.
    fn wake_entry(&mut self, pp: PidProc) {
        let clock = self.clock;
        if let Some(p) = self.proc_by_pid(pp.pid) {
            if let Phase::BlockedEntry { monitor, call } = p.phase {
                p.phase = Phase::InMonitor { monitor, call, stage: initial_stage(call, clock) };
            }
        }
    }

    /// Wakes a process resumed from a condition queue.
    fn wake_cond(&mut self, pp: PidProc) {
        if let Some(p) = self.proc_by_pid(pp.pid) {
            if let Phase::BlockedCond { monitor, call, resume } = p.phase {
                p.phase = Phase::InMonitor { monitor, call, stage: resume };
            }
        }
    }

    fn proc_by_pid(&mut self, pid: Pid) -> Option<&mut SimProcess> {
        self.procs.iter_mut().find(|p| p.pid == pid)
    }
}

/// The first body stage of a call once inside the monitor.
fn initial_stage(call: CallKind, now: Nanos) -> BodyStage {
    match call {
        CallKind::Operate(d) => BodyStage::ComputeInside { until: now + d },
        _ => BodyStage::Guard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimBuilder;
    use crate::script::Script;

    fn run_to_end(sim: &mut Sim) {
        let mut guard = 0u64;
        loop {
            match sim.step() {
                StepOutcome::Progressed => {}
                StepOutcome::Idle { next_wake: Some(t) } => sim.advance_to(t),
                StepOutcome::Idle { next_wake: None } => break,
                StepOutcome::Finished => break,
            }
            guard += 1;
            assert!(guard < 1_000_000, "runaway simulation");
        }
    }

    #[test]
    fn single_producer_consumer_completes() {
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 2);
        b.process("prod", Script::builder().repeat(3, |s| s.send(buf)).build());
        b.process("cons", Script::builder().repeat(3, |s| s.receive(buf)).build());
        let mut sim = b.build().unwrap();
        run_to_end(&mut sim);
        assert!(sim.all_terminal());
        assert_eq!(sim.metrics().calls_completed, 6);
        let snap = sim.snapshot(buf).unwrap();
        assert_eq!(snap.available, Some(2));
        assert!(snap.running.is_empty());
    }

    #[test]
    fn consumer_first_waits_then_is_signalled() {
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 1);
        b.process("cons", Script::builder().receive(buf).build());
        b.process("prod", Script::builder().compute(Nanos::from_micros(50)).send(buf).build());
        let mut sim = b.build().unwrap();
        run_to_end(&mut sim);
        assert!(sim.all_terminal());
        assert!(sim.metrics().cond_blocks >= 1, "consumer must have waited");
    }

    #[test]
    fn full_buffer_blocks_producer() {
        let mut b = SimBuilder::new();
        let buf = b.bounded_buffer("buf", 1);
        b.process("prod", Script::builder().send(buf).send(buf).build());
        b.process(
            "cons",
            Script::builder().compute(Nanos::from_micros(100)).receive(buf).receive(buf).build(),
        );
        let mut sim = b.build().unwrap();
        run_to_end(&mut sim);
        assert!(sim.all_terminal());
        assert_eq!(sim.metrics().calls_completed, 4);
    }

    #[test]
    fn allocator_round_trip() {
        let mut b = SimBuilder::new();
        let al = b.allocator("printer", 1);
        for p in 0..3 {
            b.process(
                format!("user{p}"),
                Script::builder().request(al).compute(Nanos::from_micros(5)).release(al).build(),
            );
        }
        let mut sim = b.build().unwrap();
        run_to_end(&mut sim);
        assert!(sim.all_terminal());
        let snap = sim.snapshot(al).unwrap();
        assert_eq!(snap.available, Some(1));
    }

    #[test]
    fn manager_operations_are_serialized() {
        let mut b = SimBuilder::new();
        let mg = b.manager("cell");
        for p in 0..4 {
            b.process(
                format!("op{p}"),
                Script::builder().operate(mg, Nanos::from_micros(10)).build(),
            );
        }
        let mut sim = b.build().unwrap();
        run_to_end(&mut sim);
        assert!(sim.all_terminal());
        assert_eq!(sim.metrics().calls_completed, 4);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let build = || {
            let mut b = SimBuilder::new().with_config(SimConfig::random_seeded(7));
            let buf = b.bounded_buffer("buf", 2);
            for p in 0..3 {
                b.process(format!("prod{p}"), Script::builder().repeat(5, |s| s.send(buf)).build());
                b.process(
                    format!("cons{p}"),
                    Script::builder().repeat(5, |s| s.receive(buf)).build(),
                );
            }
            b.with_full_trace().build().unwrap()
        };
        let mut s1 = build();
        let mut s2 = build();
        run_to_end(&mut s1);
        run_to_end(&mut s2);
        assert_eq!(s1.full_trace(), s2.full_trace());
        assert_eq!(s1.clock(), s2.clock());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let build = |seed| {
            let mut b = SimBuilder::new().with_config(SimConfig::random_seeded(seed));
            let buf = b.bounded_buffer("buf", 1);
            for p in 0..4 {
                b.process(format!("prod{p}"), Script::builder().repeat(4, |s| s.send(buf)).build());
                b.process(
                    format!("cons{p}"),
                    Script::builder().repeat(4, |s| s.receive(buf)).build(),
                );
            }
            b.with_full_trace().build().unwrap()
        };
        let mut s1 = build(1);
        let mut s2 = build(2);
        run_to_end(&mut s1);
        run_to_end(&mut s2);
        // Not a hard guarantee, but with 8 processes the interleavings
        // practically always differ.
        assert_ne!(s1.full_trace(), s2.full_trace());
    }

    #[test]
    fn deadlocked_double_request_reports_idle_forever() {
        let mut b = SimBuilder::new();
        let al = b.allocator("res", 1);
        b.process("dead", Script::double_request(al));
        let mut sim = b.build().unwrap();
        let mut guard = 0;
        let stuck = loop {
            match sim.step() {
                StepOutcome::Progressed => {}
                StepOutcome::Idle { next_wake: None } => break true,
                StepOutcome::Idle { next_wake: Some(t) } => sim.advance_to(t),
                StepOutcome::Finished => break false,
            }
            guard += 1;
            if guard > 100_000 {
                break false;
            }
        };
        assert!(stuck, "double request on a single unit must deadlock");
        assert!(!sim.all_terminal());
    }

    #[test]
    fn events_have_monotone_seq_and_time() {
        let mut b = SimBuilder::new().with_full_trace();
        let buf = b.bounded_buffer("buf", 2);
        b.process("p", Script::builder().repeat(3, |s| s.send(buf)).build());
        b.process("c", Script::builder().repeat(3, |s| s.receive(buf)).build());
        let mut sim = b.build().unwrap();
        run_to_end(&mut sim);
        let trace = sim.full_trace();
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].time <= w[1].time);
        }
    }
}
