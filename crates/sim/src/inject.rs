//! Fault injection for the simulated monitor kernel.
//!
//! The evaluation of the paper (§4) injects *"faults of different kinds
//! as classified in Section 3.2 … randomly"* and measures detection
//! coverage. [`FaultInjector`] realizes that campaign deterministically:
//! each [`InjectionPlan`] names a fault class from the taxonomy, the
//! monitor to perturb, and a [`Trigger`] selecting which primitive
//! occurrence misbehaves.
//!
//! Implementation- and procedure-level faults (`E*`, `W*`, `X*`, `T1`,
//! `P*`) are realized *inside the kernel* — the monitor protocol itself
//! misbehaves while the data-gathering layer keeps recording faithfully.
//! User-process-level faults (`U*`) are faulty *scripts*
//! (see [`crate::script::Script`]); the injector recognizes them in
//! campaign plans but the kernel has nothing to do for them.

use rmon_core::{FaultKind, MonitorId, Nanos, Pid};

/// Selects which occurrence of an injectable site misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly once, at the `n`-th (1-based) eligible occurrence.
    OnNth(u32),
    /// Fire at every eligible occurrence caused by this process.
    OnPid(Pid),
    /// Fire at every eligible occurrence.
    Always,
}

/// A fault injection that actually happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredInjection {
    /// The realized fault class.
    pub fault: FaultKind,
    /// The perturbed monitor.
    pub monitor: MonitorId,
    /// The process at the perturbed site.
    pub pid: Pid,
    /// Virtual time of the perturbation.
    pub at: Nanos,
}

/// One planned fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Which taxonomy class to realize.
    pub fault: FaultKind,
    /// The monitor whose primitive misbehaves.
    pub monitor: MonitorId,
    /// When to misbehave.
    pub trigger: Trigger,
}

impl InjectionPlan {
    /// Plan firing at the first eligible occurrence on `monitor`.
    pub fn once(fault: FaultKind, monitor: MonitorId) -> Self {
        InjectionPlan { fault, monitor, trigger: Trigger::OnNth(1) }
    }

    /// Plan firing at the `n`-th eligible occurrence.
    pub fn nth(fault: FaultKind, monitor: MonitorId, n: u32) -> Self {
        InjectionPlan { fault, monitor, trigger: Trigger::OnNth(n) }
    }

    /// Plan targeting one process persistently.
    pub fn on_pid(fault: FaultKind, monitor: MonitorId, pid: Pid) -> Self {
        InjectionPlan { fault, monitor, trigger: Trigger::OnPid(pid) }
    }
}

#[derive(Debug, Clone)]
struct PlanState {
    plan: InjectionPlan,
    seen: u32,
    fired: bool,
}

/// Deterministic fault injector consulted by the kernel at each
/// injectable site.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plans: Vec<PlanState>,
    fired_log: Vec<FiredInjection>,
}

impl FaultInjector {
    /// An injector with no plans (every query answers "behave").
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a plan.
    pub fn add(&mut self, plan: InjectionPlan) {
        self.plans.push(PlanState { plan, seen: 0, fired: false });
    }

    /// Whether any plan exists for the given fault class (fired or
    /// not) — used by the kernel to cheaply skip bookkeeping.
    pub fn has_plan(&self, fault: FaultKind) -> bool {
        self.plans.iter().any(|p| p.plan.fault == fault)
    }

    /// Consulted at an eligible site: decides whether the site should
    /// misbehave *now*, advancing trigger bookkeeping.
    ///
    /// `OnNth` plans count eligible occurrences and fire exactly once;
    /// `OnPid` plans fire for every eligible occurrence by the process;
    /// `Always` plans fire unconditionally.
    pub fn fire(&mut self, fault: FaultKind, monitor: MonitorId, pid: Pid, now: Nanos) -> bool {
        let mut decision = false;
        for ps in &mut self.plans {
            if ps.plan.fault != fault || ps.plan.monitor != monitor {
                continue;
            }
            let hit = match ps.plan.trigger {
                Trigger::OnNth(n) => {
                    if ps.fired {
                        false
                    } else {
                        ps.seen += 1;
                        if ps.seen == n {
                            ps.fired = true;
                            true
                        } else {
                            false
                        }
                    }
                }
                Trigger::OnPid(p) => p == pid,
                Trigger::Always => true,
            };
            if hit {
                decision = true;
                self.fired_log.push(FiredInjection { fault, monitor, pid, at: now });
            }
        }
        decision
    }

    /// Non-consuming variant for *persistent* conditions (e.g. "is this
    /// entry waiter starved?") — does not advance `OnNth` counters.
    pub fn persists(&self, fault: FaultKind, monitor: MonitorId, pid: Pid) -> bool {
        self.plans.iter().any(|ps| {
            ps.plan.fault == fault
                && ps.plan.monitor == monitor
                && match ps.plan.trigger {
                    Trigger::OnNth(_) => {
                        ps.fired && last_fired_pid(self, fault, monitor) == Some(pid)
                    }
                    Trigger::OnPid(p) => p == pid,
                    Trigger::Always => true,
                }
        })
    }

    /// Everything that actually fired, in order.
    pub fn fired(&self) -> &[FiredInjection] {
        &self.fired_log
    }

    /// Virtual time of the first perturbation, if any fired.
    pub fn first_fired_at(&self) -> Option<Nanos> {
        self.fired_log.first().map(|f| f.at)
    }

    /// Whether at least one plan fired.
    pub fn any_fired(&self) -> bool {
        !self.fired_log.is_empty()
    }
}

fn last_fired_pid(inj: &FaultInjector, fault: FaultKind, monitor: MonitorId) -> Option<Pid> {
    inj.fired_log.iter().rev().find(|f| f.fault == fault && f.monitor == monitor).map(|f| f.pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: MonitorId = MonitorId::new(0);
    const P1: Pid = Pid::new(1);
    const P2: Pid = Pid::new(2);

    #[test]
    fn empty_injector_never_fires() {
        let mut inj = FaultInjector::new();
        assert!(!inj.fire(FaultKind::EnterMutualExclusion, M, P1, Nanos::ZERO));
        assert!(!inj.any_fired());
    }

    #[test]
    fn nth_fires_exactly_once_at_nth() {
        let mut inj = FaultInjector::new();
        inj.add(InjectionPlan::nth(FaultKind::WaitNotBlocked, M, 2));
        assert!(!inj.fire(FaultKind::WaitNotBlocked, M, P1, Nanos::ZERO));
        assert!(inj.fire(FaultKind::WaitNotBlocked, M, P2, Nanos::new(5)));
        assert!(!inj.fire(FaultKind::WaitNotBlocked, M, P1, Nanos::ZERO));
        assert_eq!(
            inj.fired(),
            &[FiredInjection {
                fault: FaultKind::WaitNotBlocked,
                monitor: M,
                pid: P2,
                at: Nanos::new(5)
            }]
        );
        assert_eq!(inj.first_fired_at(), Some(Nanos::new(5)));
    }

    #[test]
    fn on_pid_fires_repeatedly_for_that_pid_only() {
        let mut inj = FaultInjector::new();
        inj.add(InjectionPlan::on_pid(FaultKind::WaitEntryStarved, M, P2));
        assert!(!inj.fire(FaultKind::WaitEntryStarved, M, P1, Nanos::ZERO));
        assert!(inj.fire(FaultKind::WaitEntryStarved, M, P2, Nanos::ZERO));
        assert!(inj.fire(FaultKind::WaitEntryStarved, M, P2, Nanos::ZERO));
        assert!(inj.persists(FaultKind::WaitEntryStarved, M, P2));
        assert!(!inj.persists(FaultKind::WaitEntryStarved, M, P1));
    }

    #[test]
    fn wrong_monitor_or_fault_is_ignored() {
        let mut inj = FaultInjector::new();
        inj.add(InjectionPlan::once(FaultKind::EnterProcessLost, M));
        assert!(!inj.fire(FaultKind::EnterProcessLost, MonitorId::new(9), P1, Nanos::ZERO));
        assert!(!inj.fire(FaultKind::EnterMutualExclusion, M, P1, Nanos::ZERO));
        assert!(inj.fire(FaultKind::EnterProcessLost, M, P1, Nanos::ZERO));
    }

    #[test]
    fn has_plan_reflects_registration() {
        let mut inj = FaultInjector::new();
        assert!(!inj.has_plan(FaultKind::InternalTermination));
        inj.add(InjectionPlan::once(FaultKind::InternalTermination, M));
        assert!(inj.has_plan(FaultKind::InternalTermination));
    }

    #[test]
    fn persists_after_nth_fire_tracks_the_fired_pid() {
        let mut inj = FaultInjector::new();
        inj.add(InjectionPlan::once(FaultKind::EnterNoResponse, M));
        assert!(!inj.persists(FaultKind::EnterNoResponse, M, P1));
        assert!(inj.fire(FaultKind::EnterNoResponse, M, P1, Nanos::ZERO));
        assert!(inj.persists(FaultKind::EnterNoResponse, M, P1));
        assert!(!inj.persists(FaultKind::EnterNoResponse, M, P2));
    }
}
