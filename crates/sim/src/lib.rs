//! # rmon-sim — a deterministic monitor-kernel simulator with fault
//! injection
//!
//! This crate is the *substrate* for the robustness (fault-coverage)
//! evaluation of the DSN 2001 paper reproduced by the `rmon` workspace.
//! The paper injects faults into a Java monitor runtime; safe Rust on
//! OS threads cannot express most of those faults (the ownership system
//! forbids, say, two threads inside one mutex). Here the monitor
//! discipline is *protocol state* inside a user-level kernel, so every
//! one of the paper's 21 fault classes is expressible and injectable —
//! deterministically, under a seed.
//!
//! * [`SimBuilder`] assembles monitors (`bounded_buffer`, `allocator`,
//!   `manager`), scripted processes and [`InjectionPlan`]s.
//! * [`Sim::step`] advances one scheduling decision at a time;
//!   [`runner::run_with_detection`] drives a run with the
//!   `rmon-core` detector attached and periodic checkpoints.
//! * [`FaultInjector`] realizes implementation- and procedure-level
//!   faults inside the kernel; user-process-level faults are faulty
//!   [`Script`]s.
//!
//! ## Example: detect an injected lost process
//!
//! ```
//! use rmon_core::{DetectorConfig, FaultKind, RuleId};
//! use rmon_sim::{InjectionPlan, Script, SimBuilder, runner};
//!
//! let mut b = SimBuilder::new();
//! let buf = b.bounded_buffer("mailbox", 2);
//! b.inject(InjectionPlan::once(FaultKind::EnterProcessLost, buf));
//! b.process("prod", Script::builder().repeat(5, |s| s.send(buf)).build());
//! b.process("cons", Script::builder().repeat(5, |s| s.receive(buf)).build());
//! let mut sim = b.build()?;
//!
//! let out = runner::run_with_detection(&mut sim, DetectorConfig::default());
//! assert!(out.combined.violates_any(&[RuleId::St1EntrySnapshot, RuleId::St6EntryTimeout]));
//! # Ok::<(), rmon_sim::BuildError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod config;
mod inject;
mod kernel;
mod metrics;
mod monitor;
mod process;
pub mod runner;
mod script;
mod trace;

pub use builder::{call_compatible, BuildError, SimBuilder};
pub use config::{SchedPolicy, SimConfig};
pub use inject::{FaultInjector, FiredInjection, InjectionPlan, Trigger};
pub use kernel::{Sim, StepOutcome};
pub use metrics::SimMetrics;
pub use monitor::{EnterOutcome, ExitOutcome, MonitorData, SimMonitor, WaitOutcome};
pub use process::{BodyStage, Phase, SimProcess};
pub use runner::{
    run_plain, run_with_backend, run_with_backend_checkpointed, run_with_detection, RunOutcome,
};
pub use script::{CallKind, Op, Script, ScriptBuilder};
pub use trace::TraceRecorder;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn sim_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Sim>();
        assert_send::<SimBuilder>();
    }
}
