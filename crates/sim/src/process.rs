//! Simulated processes: state machines driven by the kernel.

use crate::script::{CallKind, Script};
use rmon_core::{MonitorId, Nanos, Pid};

/// Where a process that is inside a monitor stands in its procedure
/// body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyStage {
    /// About to evaluate the procedure's guard (may lead to a `Wait`).
    Guard,
    /// Operation-manager bodies compute inside the monitor until the
    /// given virtual time.
    ComputeInside {
        /// Virtual time at which the in-monitor work completes.
        until: Nanos,
    },
    /// About to complete the procedure: the data effect (deposit,
    /// remove, take, put) is applied in the same kernel step as the
    /// combined `Signal-Exit`, so a checkpoint can never observe a
    /// resource state that disagrees with the exits recorded so far —
    /// the paper counts a call as successful at its completion.
    /// Waiters resume here (Hoare hand-off guarantees the guard
    /// condition, so it is not re-evaluated).
    Exit,
}

/// Lifecycle of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Ready to execute the next script op.
    Ready,
    /// Computing outside any monitor until the given virtual time.
    Computing {
        /// Virtual completion time.
        until: Nanos,
    },
    /// Inside a monitor, about to execute `stage`.
    InMonitor {
        /// The monitor it occupies.
        monitor: MonitorId,
        /// The call kind being executed.
        call: CallKind,
        /// Next body stage.
        stage: BodyStage,
    },
    /// Parked on a monitor's entry queue.
    BlockedEntry {
        /// The monitor whose entry queue holds the process.
        monitor: MonitorId,
        /// The call to resume once admitted.
        call: CallKind,
    },
    /// Parked on a condition queue.
    BlockedCond {
        /// The monitor whose condition queue holds the process.
        monitor: MonitorId,
        /// The call to resume once signalled.
        call: CallKind,
        /// Stage to resume at (always [`BodyStage::Exit`] today).
        resume: BodyStage,
    },
    /// Script finished.
    Done,
    /// Dropped by an injected fault (lost process).
    Lost,
    /// Terminated inside a monitor by an injected fault.
    DeadInside,
}

impl Phase {
    /// Whether the process can take a kernel step at time `now`.
    pub fn actionable(&self, now: Nanos) -> bool {
        match *self {
            Phase::Ready => true,
            Phase::Computing { until } => until <= now,
            Phase::InMonitor { stage, .. } => match stage {
                BodyStage::ComputeInside { until } => until <= now,
                _ => true,
            },
            _ => false,
        }
    }

    /// Whether the process has finished (successfully or not).
    pub fn terminal(&self) -> bool {
        matches!(self, Phase::Done | Phase::Lost | Phase::DeadInside)
    }

    /// Whether the process is blocked on a queue.
    pub fn blocked(&self) -> bool {
        matches!(self, Phase::BlockedEntry { .. } | Phase::BlockedCond { .. })
    }

    /// The wake-up time if the process is computing (inside or outside
    /// a monitor).
    pub fn wake_time(&self) -> Option<Nanos> {
        match *self {
            Phase::Computing { until } => Some(until),
            Phase::InMonitor { stage: BodyStage::ComputeInside { until }, .. } => Some(until),
            _ => None,
        }
    }
}

/// A simulated process: a script plus its execution state.
#[derive(Debug, Clone)]
pub struct SimProcess {
    /// Process identifier.
    pub pid: Pid,
    /// Debug name.
    pub name: String,
    /// The program.
    pub script: Script,
    /// Instruction pointer into the script.
    pub ip: usize,
    /// Current lifecycle phase.
    pub phase: Phase,
    /// Completed monitor calls (metrics).
    pub calls_completed: u64,
}

impl SimProcess {
    /// Creates a ready process.
    pub fn new(pid: Pid, name: impl Into<String>, script: Script) -> Self {
        SimProcess {
            pid,
            name: name.into(),
            script,
            ip: 0,
            phase: Phase::Ready,
            calls_completed: 0,
        }
    }

    /// The op at the instruction pointer, if any.
    pub fn current_op(&self) -> Option<crate::script::Op> {
        self.script.ops().get(self.ip).copied()
    }

    /// Advances past the current op; marks `Done` at script end.
    pub fn advance_ip(&mut self) {
        self.ip += 1;
        if self.ip >= self.script.len() {
            self.phase = Phase::Done;
        } else {
            self.phase = Phase::Ready;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Op;

    const M: MonitorId = MonitorId::new(0);

    #[test]
    fn phase_actionability() {
        let now = Nanos::new(100);
        assert!(Phase::Ready.actionable(now));
        assert!(Phase::Computing { until: Nanos::new(50) }.actionable(now));
        assert!(!Phase::Computing { until: Nanos::new(150) }.actionable(now));
        assert!(Phase::InMonitor { monitor: M, call: CallKind::Send, stage: BodyStage::Guard }
            .actionable(now));
        assert!(!Phase::InMonitor {
            monitor: M,
            call: CallKind::Operate(Nanos::new(1)),
            stage: BodyStage::ComputeInside { until: Nanos::new(200) }
        }
        .actionable(now));
        assert!(!Phase::BlockedEntry { monitor: M, call: CallKind::Send }.actionable(now));
        assert!(!Phase::Done.actionable(now));
    }

    #[test]
    fn terminal_and_blocked_classification() {
        assert!(Phase::Done.terminal());
        assert!(Phase::Lost.terminal());
        assert!(Phase::DeadInside.terminal());
        assert!(!Phase::Ready.terminal());
        assert!(Phase::BlockedEntry { monitor: M, call: CallKind::Send }.blocked());
        assert!(Phase::BlockedCond { monitor: M, call: CallKind::Send, resume: BodyStage::Exit }
            .blocked());
        assert!(!Phase::Ready.blocked());
    }

    #[test]
    fn wake_time_extraction() {
        assert_eq!(Phase::Computing { until: Nanos::new(7) }.wake_time(), Some(Nanos::new(7)));
        assert_eq!(
            Phase::InMonitor {
                monitor: M,
                call: CallKind::Operate(Nanos::new(1)),
                stage: BodyStage::ComputeInside { until: Nanos::new(9) }
            }
            .wake_time(),
            Some(Nanos::new(9))
        );
        assert_eq!(Phase::Ready.wake_time(), None);
    }

    #[test]
    fn process_ip_advance_and_done() {
        let script =
            Script::builder().op(Op::Compute(Nanos::new(1))).op(Op::Compute(Nanos::new(2))).build();
        let mut p = SimProcess::new(Pid::new(0), "p", script);
        assert!(p.current_op().is_some());
        p.advance_ip();
        assert_eq!(p.phase, Phase::Ready);
        p.advance_ip();
        assert_eq!(p.phase, Phase::Done);
        assert_eq!(p.current_op(), None);
    }
}
