//! Simulation configuration and scheduling policies.

use rmon_core::Nanos;

/// How the kernel picks the next actionable process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Rotate through actionable processes in pid order, starting after
    /// the last scheduled one. Fully deterministic.
    RoundRobin,
    /// Pick uniformly at random among actionable processes, driven by
    /// the simulation seed. Deterministic for a fixed seed.
    Random,
}

/// Knobs of the deterministic simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Seed for the scheduling RNG (and any randomized workload hooks).
    pub seed: u64,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Virtual cost of one kernel step (entering, a guard check, an
    /// exit, …).
    pub step_cost: Nanos,
    /// Hard stop: simulation ends when the virtual clock passes this.
    pub max_time: Nanos,
    /// Safety valve: maximum number of kernel steps.
    pub max_steps: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            policy: SchedPolicy::RoundRobin,
            step_cost: Nanos::from_micros(1),
            max_time: Nanos::from_secs(10),
            max_steps: 2_000_000,
        }
    }
}

impl SimConfig {
    /// Convenience: default configuration with a specific seed and
    /// random scheduling.
    pub fn random_seeded(seed: u64) -> Self {
        SimConfig { seed, policy: SchedPolicy::Random, ..SimConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_bounded() {
        let c = SimConfig::default();
        assert!(c.max_steps > 0);
        assert!(c.max_time > Nanos::ZERO);
        assert_eq!(c.policy, SchedPolicy::RoundRobin);
    }

    #[test]
    fn random_seeded_sets_policy() {
        let c = SimConfig::random_seeded(42);
        assert_eq!(c.seed, 42);
        assert_eq!(c.policy, SchedPolicy::Random);
    }
}
