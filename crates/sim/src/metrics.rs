//! Simulation metrics.

use rmon_core::Nanos;

/// Counters collected during a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimMetrics {
    /// Kernel steps executed.
    pub steps: u64,
    /// Monitor calls completed (successful `Signal-Exit`s).
    pub calls_completed: u64,
    /// Times a process blocked on an entry queue.
    pub entry_blocks: u64,
    /// Times a process blocked on a condition queue.
    pub cond_blocks: u64,
    /// Final virtual time.
    pub end_time: Nanos,
}

impl SimMetrics {
    /// Completed calls per virtual second (0 if no time elapsed).
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.end_time.as_secs_f64();
        if secs > 0.0 {
            self.calls_completed as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_handles_zero_time() {
        let m = SimMetrics::default();
        assert_eq!(m.throughput_per_sec(), 0.0);
    }

    #[test]
    fn throughput_scales() {
        let m = SimMetrics {
            calls_completed: 100,
            end_time: Nanos::from_secs(2),
            ..Default::default()
        };
        assert!((m.throughput_per_sec() - 50.0).abs() < 1e-9);
    }
}
